"""Warm-up (initial transient) analysis for simulation output.

The paper discards the first quarter of each run (1.0e6 of 4.0e6 s) as
start-up.  This module provides the standard data-driven alternative —
the **MSER (Marginal Standard Error Rule)** truncation point of White —
so users can check that a fixed warm-up fraction is long enough for
their own configurations, plus a simple batching helper to turn per-job
observations into the evenly sized batches MSER expects.

MSER picks the truncation d minimizing the *marginal standard error*

.. math::  \\mathrm{MSER}(d) = \\frac{1}{(n-d)^2}
           \\sum_{j=d}^{n-1} (x_j - \\bar{x}_{d..n-1})^2,

i.e. the half-width proxy of the remaining sample; deleting biased
start-up observations reduces it, deleting stationary ones inflates it.
MSER-5 applies the rule to batch means of 5 consecutive observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MserResult", "mser", "mser5", "batch_means"]


def batch_means(observations: np.ndarray, batch_size: int) -> np.ndarray:
    """Means of consecutive non-overlapping batches (tail remainder dropped)."""
    obs = np.asarray(observations, dtype=float)
    if obs.ndim != 1:
        raise ValueError("observations must be 1-D")
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    n_batches = obs.size // batch_size
    if n_batches == 0:
        raise ValueError(
            f"need at least {batch_size} observations, got {obs.size}"
        )
    return obs[: n_batches * batch_size].reshape(n_batches, batch_size).mean(axis=1)


@dataclass(frozen=True)
class MserResult:
    """Truncation decision for one output series."""

    #: Number of leading (batched) observations to discard.
    truncation: int
    #: MSER statistic at the chosen truncation.
    statistic: float
    #: Mean of the retained observations.
    truncated_mean: float
    #: Total number of (batched) observations considered.
    n: int

    @property
    def truncation_fraction(self) -> float:
        return self.truncation / self.n


def mser(observations: np.ndarray, *, max_fraction: float = 0.5) -> MserResult:
    """MSER truncation point of a stationary-tailed series.

    ``max_fraction`` caps the searched truncation (White's rule ignores
    candidates beyond half the run: if more must be deleted, the run is
    simply too short).  Fully vectorized via suffix sums.
    """
    x = np.asarray(observations, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("need a 1-D series with at least two observations")
    if not 0.0 < max_fraction <= 1.0:
        raise ValueError(f"max_fraction must lie in (0, 1], got {max_fraction}")
    n = x.size
    d_max = max(1, int(np.floor(n * max_fraction)))

    # Suffix sums: S1[d] = sum(x[d:]), S2[d] = sum(x[d:]**2).
    s1 = np.concatenate([np.cumsum(x[::-1])[::-1], [0.0]])
    s2 = np.concatenate([np.cumsum((x * x)[::-1])[::-1], [0.0]])
    d = np.arange(d_max)
    m = n - d  # retained counts, all >= n - d_max + ... >= 1
    mean_tail = s1[d] / m
    # Σ (x−mean)² = S2 − m·mean²  (clamped against rounding).
    sse = np.maximum(s2[d] - m * mean_tail**2, 0.0)
    stat = sse / m**2
    best = int(np.argmin(stat))
    return MserResult(
        truncation=best,
        statistic=float(stat[best]),
        truncated_mean=float(mean_tail[best]),
        n=n,
    )


def mser5(observations: np.ndarray, *, max_fraction: float = 0.5) -> MserResult:
    """MSER-5: the rule applied to batch means of 5 observations.

    The returned ``truncation`` counts *batches*; multiply by 5 for raw
    observations.
    """
    return mser(batch_means(observations, 5), max_fraction=max_fraction)
