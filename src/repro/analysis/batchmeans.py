"""Single-run confidence intervals via the method of batch means.

The paper buys statistical confidence with 10 independent replications.
The classical alternative spends one *long* run: split the post-warm-up
output into b contiguous batches, treat the batch means as (nearly)
independent samples, and build a Student-t interval.  Valid when the
batches are long enough that their means decorrelate — checked here via
the lag-1 autocorrelation of the batch means (von Neumann style), which
is reported alongside the interval so callers can tell a trustworthy CI
from an undersized-batch one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["BatchMeansResult", "batch_means_ci"]


@dataclass(frozen=True)
class BatchMeansResult:
    """Batch-means point estimate, CI, and independence diagnostic."""

    mean: float
    half_width: float
    confidence: float
    n_batches: int
    batch_size: int
    #: Lag-1 autocorrelation of the batch means (≈0 for valid batching).
    lag1_autocorrelation: float

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    @property
    def batches_look_independent(self) -> bool:
        """Heuristic: |r₁| below two standard errors (2/√b)."""
        return abs(self.lag1_autocorrelation) <= 2.0 / math.sqrt(self.n_batches)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flag = "" if self.batches_look_independent else " [correlated batches!]"
        return (
            f"{self.mean:.6g} ± {self.half_width:.2g} "
            f"({self.n_batches} batches x {self.batch_size}){flag}"
        )


def _lag1_autocorrelation(xs: np.ndarray) -> float:
    centered = xs - xs.mean()
    denom = float(centered @ centered)
    if denom == 0.0:
        return 0.0
    return float(centered[:-1] @ centered[1:]) / denom


def batch_means_ci(
    observations,
    *,
    n_batches: int = 20,
    confidence: float = 0.95,
) -> BatchMeansResult:
    """Batch-means CI for the steady-state mean of one output series.

    *observations* should already exclude the warm-up (pair with
    :func:`repro.analysis.warmup.mser` to find the truncation point).
    The trailing remainder that does not fill a whole batch is dropped.
    """
    xs = np.asarray(observations, dtype=float)
    if xs.ndim != 1:
        raise ValueError("observations must be 1-D")
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    batch_size = xs.size // n_batches
    if batch_size < 1:
        raise ValueError(
            f"{xs.size} observations cannot fill {n_batches} batches"
        )
    means = (
        xs[: n_batches * batch_size].reshape(n_batches, batch_size).mean(axis=1)
    )
    grand = float(means.mean())
    std = float(means.std(ddof=1))
    t = float(stats.t.ppf(0.5 + confidence / 2.0, df=n_batches - 1))
    return BatchMeansResult(
        mean=grand,
        half_width=t * std / math.sqrt(n_batches),
        confidence=confidence,
        n_batches=n_batches,
        batch_size=batch_size,
        lag1_autocorrelation=_lag1_autocorrelation(means),
    )
