"""Simulation-methodology tools: warm-up detection and model validation."""

from .batchmeans import BatchMeansResult, batch_means_ci
from .validation import ValidationReport, validate_against_theory
from .warmup import MserResult, batch_means, mser, mser5
from .workload_report import WorkloadReport, characterize

__all__ = [
    "batch_means_ci",
    "BatchMeansResult",
    "mser",
    "mser5",
    "batch_means",
    "MserResult",
    "validate_against_theory",
    "ValidationReport",
    "characterize",
    "WorkloadReport",
]
