"""Workload characterization: the statistics behind Section 4.1's model.

Given a :class:`~repro.sim.trace.JobTrace` (real or synthesized), the
report measures exactly the properties the paper invokes to justify its
workload model:

* **heavy-tailed sizes** — size percentiles plus the load share carried
  by the largest jobs ("a small number of very large jobs make up a
  significant fraction of the total load");
* **bursty arrivals** — inter-arrival CV (Zhou measured 2.64; the paper
  models 3.0) and an index-of-dispersion-style burst measure;
* **offered load** against a given cluster.

The report doubles as a fitting aid: its `recommended_model()` returns
the (mean, CV) pairs to plug into the library's distribution factories
to mimic the trace synthetically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.trace import JobTrace

__all__ = ["WorkloadReport", "characterize"]


@dataclass(frozen=True)
class WorkloadReport:
    """Measured workload characteristics of one trace."""

    n_jobs: int
    horizon: float
    mean_size: float
    size_cv: float
    size_percentiles: dict[int, float]
    #: Fraction of total work carried by the largest 1% of jobs.
    top1pct_load_share: float
    mean_interarrival: float
    interarrival_cv: float
    #: Ratio of interval-count variance to mean over 100 windows —
    #: 1 for Poisson, > 1 for bursty streams (index of dispersion).
    dispersion_index: float

    @property
    def heavy_tailed(self) -> bool:
        """Rule of thumb: top 1% of jobs carries over 10% of the work."""
        return self.top1pct_load_share > 0.10

    @property
    def bursty(self) -> bool:
        """Inter-arrival CV above the Poisson value."""
        return self.interarrival_cv > 1.2

    def recommended_model(self) -> dict[str, float]:
        """(mean, cv) pairs for the library's distribution factories."""
        return {
            "size_mean": self.mean_size,
            "size_cv": self.size_cv,
            "interarrival_mean": self.mean_interarrival,
            "interarrival_cv": max(self.interarrival_cv, 1.0),
        }

    def summary(self) -> str:
        tail = "heavy-tailed" if self.heavy_tailed else "light-tailed"
        burst = "bursty" if self.bursty else "smooth"
        return (
            f"{self.n_jobs} jobs over {self.horizon:.6g} s: sizes mean "
            f"{self.mean_size:.4g} cv {self.size_cv:.3g} ({tail}; top 1% "
            f"carries {self.top1pct_load_share:.0%} of work); arrivals cv "
            f"{self.interarrival_cv:.3g}, dispersion {self.dispersion_index:.3g} "
            f"({burst})"
        )


def characterize(trace: JobTrace, *, n_windows: int = 100) -> WorkloadReport:
    """Measure a trace's workload characteristics."""
    if trace.n_jobs < 3:
        raise ValueError("need at least three jobs to characterize a trace")
    if n_windows < 2:
        raise ValueError(f"need at least 2 windows, got {n_windows}")
    sizes = trace.sizes
    mean_size = float(sizes.mean())
    size_cv = float(sizes.std() / mean_size) if mean_size > 0 else 0.0
    percentiles = {
        p: float(np.percentile(sizes, p)) for p in (50, 90, 99)
    }

    order = np.sort(sizes)
    top_count = max(1, int(np.ceil(0.01 * sizes.size)))
    top_share = float(order[-top_count:].sum() / sizes.sum())

    gaps = np.diff(trace.arrival_times)
    mean_gap = float(gaps.mean())
    gap_cv = float(gaps.std() / mean_gap) if mean_gap > 0 else 0.0

    # Index of dispersion of counts over equal windows.
    horizon = trace.horizon if trace.horizon > 0 else float(trace.arrival_times[-1] + 1)
    edges = np.linspace(0.0, horizon, n_windows + 1)
    counts, _ = np.histogram(trace.arrival_times, bins=edges)
    mean_count = counts.mean()
    dispersion = float(counts.var() / mean_count) if mean_count > 0 else 0.0

    return WorkloadReport(
        n_jobs=trace.n_jobs,
        horizon=trace.horizon,
        mean_size=mean_size,
        size_cv=size_cv,
        size_percentiles=percentiles,
        top1pct_load_share=top_share,
        mean_interarrival=mean_gap,
        interarrival_cv=gap_cv,
        dispersion_index=dispersion,
    )
