"""Fault models: server failure/repair, speed degradation, estimate drift.

The paper's static policies assume every computer stays up at its
nominal speed sᵢ.  This module supplies the three ways that assumption
breaks in a real network, in the regime studied for heterogeneous
server pools by Gardner et al. (arXiv:2006.13987):

* **Markov on/off failures** — each server alternates exponentially
  distributed UP periods (mean ``mtbf``) and DOWN periods (mean
  ``mttr``).  A failed server loses or bounces its resident jobs (see
  :class:`RetryPolicy`) and accepts no work until repaired.
* **Transient speed degradation** — degradation episodes arrive at each
  server as a Poisson process (rate ``degrade_rate``); during an episode
  the server runs at ``degrade_factor`` times its nominal speed.
* **Stale-estimate drift** — when a failure-aware controller re-solves
  the allocation it may only have noisy speed estimates; the engine
  perturbs the speeds it reports by lognormal noise with sigma
  ``estimate_drift``.

Every stochastic element draws from *dedicated* RNG substreams derived
from the replication seed (one per server per fault channel), so a
faulty run is exactly reproducible — the failure timeline is a pure
function of ``(seed, FaultConfig, n_servers, horizon)`` and never
perturbs the arrival/size/dispatch streams.  The whole timeline is
pre-generated before the run starts, which also makes serial and
parallel executions trivially identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RetryPolicy",
    "FaultConfig",
    "FaultEvent",
    "build_timeline",
    "drift_stream",
]

from ..rng import _ROLES

#: Substream role index for fault processes — the "faults" role of
#: :data:`repro.rng._ROLES`, extended per server/channel below.
FAULT_ROLE = _ROLES["faults"]

#: Fault-event kinds on a timeline (engine maps these to event-queue
#: kinds).  DEGRADE events carry +1 (episode start) / 0 (episode end).
DOWN, UP, DEGRADE_START, DEGRADE_END = "down", "up", "degrade_start", "degrade_end"


@dataclass(frozen=True)
class RetryPolicy:
    """How jobs bounced by a failed server are retried.

    A job's n-th failed placement (n = 1, 2, ...) is re-dispatched after
    ``delay(n - 1)`` seconds — truncated exponential backoff — until
    ``max_attempts`` placements have failed, at which point the job is
    lost.  ``base_delay = 0`` means immediate re-dispatch to a survivor.
    The backoff schedule is deterministic (no jitter) so fault runs stay
    bit-reproducible.
    """

    max_attempts: int = 5
    base_delay: float = 1.0
    backoff: float = 2.0
    max_delay: float = 60.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay {self.max_delay} below base_delay {self.base_delay}"
            )

    def delay(self, failed_attempts: int) -> float:
        """Wait before the next placement after *failed_attempts* failures."""
        if failed_attempts <= 0:
            return self.base_delay
        return min(self.max_delay, self.base_delay * self.backoff**failed_attempts)


_ON_FAILURE = ("retry", "lose")


@dataclass(frozen=True)
class FaultConfig:
    """Per-run fault injection parameters (attach to ``SimulationConfig``).

    Parameters
    ----------
    mtbf:
        Mean time between failures per server (exponential UP periods).
        ``None`` disables the failure/repair process.
    mttr:
        Mean time to repair (exponential DOWN periods).
    degrade_rate:
        Poisson rate of degradation episodes per server (0 disables).
    degrade_duration:
        Mean episode length (exponential).
    degrade_factor:
        Speed multiplier during an episode, in (0, 1].
    estimate_drift:
        Sigma of the lognormal noise on the speeds a failure-aware
        controller sees when it re-solves the allocation (0 = exact).
    on_failure:
        ``"retry"`` — jobs at a failed server (and jobs dispatched to a
        down server) are re-dispatched per *retry*; ``"lose"`` — they
        are dropped immediately and counted as lost.
    retry:
        The :class:`RetryPolicy` governing re-dispatch.
    servers:
        Optional subset of server indices subject to failures and
        degradation; ``None`` means all servers.
    """

    mtbf: float | None = None
    mttr: float = 50.0
    degrade_rate: float = 0.0
    degrade_duration: float = 0.0
    degrade_factor: float = 0.5
    estimate_drift: float = 0.0
    on_failure: str = "retry"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    servers: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.mtbf is not None and self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if self.mttr <= 0:
            raise ValueError(f"mttr must be positive, got {self.mttr}")
        if self.degrade_rate < 0:
            raise ValueError(f"degrade_rate must be >= 0, got {self.degrade_rate}")
        if self.degrade_rate > 0 and self.degrade_duration <= 0:
            raise ValueError(
                "degrade_duration must be positive when degrade_rate > 0"
            )
        if not 0.0 < self.degrade_factor <= 1.0:
            raise ValueError(
                f"degrade_factor must lie in (0, 1], got {self.degrade_factor}"
            )
        if self.estimate_drift < 0:
            raise ValueError(
                f"estimate_drift must be >= 0, got {self.estimate_drift}"
            )
        if self.on_failure not in _ON_FAILURE:
            raise ValueError(
                f"on_failure must be one of {_ON_FAILURE}, got {self.on_failure!r}"
            )
        if self.servers is not None:
            object.__setattr__(
                self, "servers", tuple(int(i) for i in self.servers)
            )

    @property
    def enabled(self) -> bool:
        """Whether this configuration injects any fault at all."""
        return self.mtbf is not None or self.degrade_rate > 0

    def applies_to(self, server: int) -> bool:
        return self.servers is None or server in self.servers

    #: Every key ``parse`` accepts, in documentation order — the
    #: unknown-key error lists these so a typo (``mtr=50``) tells the
    #: user what would have been valid instead of just what was not.
    PARSE_KEYS = (
        "mtbf", "mttr", "degrade_rate", "degrade_duration",
        "degrade_factor", "drift", "on_failure", "max_attempts",
        "base_delay", "backoff", "max_delay",
    )

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Build a config from a CLI spec like ``mtbf=500,mttr=50``.

        Recognized keys: ``mtbf``, ``mttr``, ``degrade_rate``,
        ``degrade_duration``, ``degrade_factor``, ``drift``,
        ``on_failure`` (retry|lose), ``max_attempts``, ``base_delay``,
        ``backoff``, ``max_delay``.  Unknown keys fail loudly with the
        valid-key list rather than being silently ignored.
        """
        kwargs: dict = {}
        retry_kwargs: dict = {}
        seen: set[str] = set()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"fault spec entries need key=value, got {part!r} "
                    f"(valid keys: {', '.join(cls.PARSE_KEYS)})"
                )
            key, value = (s.strip() for s in part.split("=", 1))
            # A repeated key is almost always an editing mistake; taking
            # the last occurrence silently would hide which of the two
            # values the run actually used.
            if key in seen:
                raise ValueError(
                    f"duplicate fault spec key {key!r} in {spec!r}; "
                    "each key may appear once"
                )
            seen.add(key)
            if key in ("mtbf", "mttr", "degrade_rate", "degrade_duration",
                       "degrade_factor"):
                kwargs[key] = float(value)
            elif key == "drift":
                kwargs["estimate_drift"] = float(value)
            elif key == "on_failure":
                kwargs["on_failure"] = value
            elif key == "max_attempts":
                retry_kwargs["max_attempts"] = int(value)
            elif key in ("base_delay", "backoff", "max_delay"):
                retry_kwargs[key] = float(value)
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r}; valid keys: "
                    f"{', '.join(cls.PARSE_KEYS)}"
                )
        if retry_kwargs:
            kwargs["retry"] = RetryPolicy(**retry_kwargs)
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultEvent:
    """One pre-generated fault event on the timeline."""

    time: float
    kind: str  # DOWN / UP / DEGRADE_START / DEGRADE_END
    server: int


def _server_stream(
    seed: int | np.random.SeedSequence, server: int, channel: int
) -> np.random.Generator:
    """Dedicated generator for one (server, fault channel) pair.

    Spawn keys extend the replication root with (FAULT_ROLE, server,
    channel), so fault substreams never collide with the engine's
    arrival/size/dispatch/feedback streams or with each other.
    """
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    child = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=(*root.spawn_key, FAULT_ROLE, int(server), int(channel)),
    )
    return np.random.default_rng(child)


def drift_stream(seed: int | np.random.SeedSequence) -> np.random.Generator:
    """Generator for stale-estimate drift draws (one per replication).

    Distinct from every per-server channel: its spawn key has no
    (server, channel) suffix.
    """
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=(*root.spawn_key, FAULT_ROLE)
    )
    return np.random.default_rng(child)


def build_timeline(
    faults: FaultConfig,
    n_servers: int,
    horizon: float,
    seed: int | np.random.SeedSequence,
) -> list[FaultEvent]:
    """Pre-generate every fault event in [0, horizon), time-sorted.

    Each server's failure/repair process (channel 0) and degradation
    process (channel 1) draws from its own substream, so adding or
    removing one fault channel never perturbs the other, and the
    timeline is identical however the run is executed.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    events: list[FaultEvent] = []
    for i in range(n_servers):
        if not faults.applies_to(i):
            continue
        if faults.mtbf is not None:
            rng = _server_stream(seed, i, 0)
            t = 0.0
            while True:
                t += rng.exponential(faults.mtbf)
                if t >= horizon:
                    break
                events.append(FaultEvent(t, DOWN, i))
                t += rng.exponential(faults.mttr)
                if t >= horizon:
                    break
                events.append(FaultEvent(t, UP, i))
        if faults.degrade_rate > 0:
            rng = _server_stream(seed, i, 1)
            t = 0.0
            while True:
                t += rng.exponential(1.0 / faults.degrade_rate)
                if t >= horizon:
                    break
                end = t + rng.exponential(faults.degrade_duration)
                events.append(FaultEvent(t, DEGRADE_START, i))
                if end < horizon:
                    events.append(FaultEvent(end, DEGRADE_END, i))
                t = end  # episodes never self-overlap on one server
                if t >= horizon:
                    break
    events.sort(key=lambda e: (e.time, e.server, e.kind))
    return events
