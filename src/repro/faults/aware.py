"""Failure-aware dispatching: re-solve the allocation over survivors.

The paper's static policies fix the workload fractions α once, from the
full machine set.  When servers fail that allocation keeps shipping
work to dead machines (the *oblivious* mode).  The failure-aware mode
wraps any allocator-backed static policy: on each detected membership
change it re-solves the Theorem 1–3 allocation over the surviving
machine set — Algorithm 1 on the surviving sub-network — and resets the
inner dispatcher with the new fractions, which rebuilds the weighted
round-robin sequence (Algorithm 2 state) from scratch.

The controller stays *static* in the paper's sense between membership
changes: no per-job feedback, no inter-computer messages — it only
reacts to the (rare) failure/repair notifications the engine delivers.
If the surviving capacity cannot carry the offered load (ρ over the
survivors ≥ 1) no finite-response allocation exists; the wrapper falls
back to capacity-proportional (weighted) fractions over the survivors,
which at least balances the overload.
"""

from __future__ import annotations

import numpy as np

from ..allocation.base import Allocator
from ..dispatch.base import Dispatcher
from ..queueing.network import HeterogeneousNetwork

__all__ = ["survivor_fractions", "FailureAwareDispatcher"]


def survivor_fractions(speeds, up, utilization, solve=None) -> np.ndarray | None:
    """Full-length allocation with zero share on every down server.

    The FA_ORR core, shared by the batch-engine
    :class:`FailureAwareDispatcher` and the service controller's
    failure detector: solve Theorems 1–3 over the surviving
    sub-network, scatter back into a full-length vector.  When the
    survivors cannot carry the load (``utilization`` outside (0, 1) or
    the solve degenerates) the fallback is capacity-proportional over
    the survivors, which at least balances the overload.  Returns
    ``None`` on total outage — no allocation exists and the caller
    should keep its current one.

    ``solve`` maps a :class:`HeterogeneousNetwork` to an alpha vector;
    it defaults to the closed-form
    :func:`~repro.allocation.optimized.optimized_fractions`.
    """
    up = np.asarray(up, dtype=bool)
    speeds = np.asarray(speeds, dtype=float)
    if up.shape != speeds.shape:
        raise ValueError(
            f"membership mask has {up.size} entries for {speeds.size} servers"
        )
    survivors = np.flatnonzero(up)
    if survivors.size == 0:
        return None
    if solve is None:
        from ..allocation.optimized import optimized_fractions

        solve = optimized_fractions
    sub_speeds = speeds[survivors]
    sub_alphas = None
    if 0.0 < utilization < 1.0:
        try:
            network = HeterogeneousNetwork(sub_speeds, utilization=utilization)
            sub_alphas = solve(network)
        except ValueError:
            sub_alphas = None
    if sub_alphas is None:
        sub_alphas = sub_speeds / sub_speeds.sum()
    full = np.zeros(speeds.size)
    full[survivors] = sub_alphas
    return full


class FailureAwareDispatcher(Dispatcher):
    """Wrap a static dispatcher with membership-triggered re-allocation.

    Parameters
    ----------
    inner:
        The dispatcher realizing the allocation job-by-job (random or
        weighted round robin).  Delegation is total: between membership
        changes this wrapper is behaviourally identical to *inner*.
    allocator:
        The policy's allocator (e.g. ``OptimizedAllocator``), re-run on
        the surviving sub-network at each membership change.
    speeds:
        Nominal speeds of the full machine set.
    """

    name = "failure_aware"
    is_static = True
    # Alphas change mid-run on failures, so the fast path's dispatch
    # memo must never serve this wrapper's sequences.
    sequence_deterministic = False

    def __init__(self, inner: Dispatcher, allocator: Allocator, speeds):
        super().__init__()
        self.inner = inner
        self.allocator = allocator
        self.speeds = np.asarray(speeds, dtype=float)
        self.reallocations = 0

    # -- lifecycle ------------------------------------------------------

    def reset(self, alphas) -> None:
        super().reset(alphas)
        self.inner.reset(alphas)
        self.reallocations = 0

    def _setup(self) -> None:  # inner reset handles state
        pass

    # -- delegation -----------------------------------------------------

    def select(self, size: float) -> int:
        return self.inner.select(size)

    def select_batch(self, sizes: np.ndarray) -> np.ndarray:
        return self.inner.select_batch(sizes)

    def observe_arrival(self, now: float) -> None:
        self.inner.observe_arrival(now)

    def on_load_update(self, server: int) -> None:
        self.inner.on_load_update(server)

    @property
    def wants_feedback(self) -> bool:
        return self.inner.wants_feedback

    # -- the failure-aware part ----------------------------------------

    def on_membership_change(
        self, up: np.ndarray, utilization: float, speeds=None
    ) -> None:
        """Re-solve the allocation over the machines currently up.

        ``utilization`` is the offered load relative to the *surviving*
        capacity; ``speeds`` are the (possibly drift-perturbed) speed
        estimates the controller sees — defaults to the nominal speeds.
        """
        perceived = self.speeds if speeds is None else np.asarray(speeds, dtype=float)
        full = survivor_fractions(
            perceived,
            up,
            utilization,
            solve=lambda network: self.allocator.compute(network).alphas,
        )
        if full is None:
            return  # total outage: keep the last allocation, jobs bounce
        self.alphas = full
        self.inner.reset(full)  # rebuilds the WRR sequence state
        self.reallocations += 1
