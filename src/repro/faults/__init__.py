"""Fault injection: failure/repair processes, degradation, re-allocation.

See :mod:`repro.faults.models` for the fault processes and
:mod:`repro.faults.aware` for the failure-aware dispatching mode.
"""

from .aware import FailureAwareDispatcher, survivor_fractions
from .models import FaultConfig, FaultEvent, RetryPolicy, build_timeline

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "RetryPolicy",
    "build_timeline",
    "FailureAwareDispatcher",
    "survivor_fractions",
]
