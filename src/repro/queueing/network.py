"""The paper's analytical model of the heterogeneous network (Section 2.3).

A network of n computers c₁..cₙ with relative speeds sᵢ > 0 and a
base-line service rate μ (so cᵢ serves at rate sᵢμ).  Jobs arrive at
rate λ and a static scheme routes a fraction αᵢ to cᵢ.  Modeling each
computer as an M/M/1-PS queue gives (paper equations (1)–(3)):

* per-computer mean response time  T̄ᵢ = 1 / (sᵢμ − αᵢλ)
* per-computer mean response ratio R̄ᵢ = μ / (sᵢμ − αᵢλ)
* system mean response time        T̄ = Σᵢ αᵢ / (sᵢμ − αᵢλ)
* system mean response ratio       R̄ = μ T̄

so minimizing T̄ and minimizing R̄ are the same problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HeterogeneousNetwork", "validate_allocation"]


def validate_allocation(alphas: np.ndarray, *, atol: float = 1e-9) -> np.ndarray:
    """Check αᵢ ∈ [0, 1] and Σαᵢ = 1; return as a float array."""
    a = np.asarray(alphas, dtype=float)
    if a.ndim != 1:
        raise ValueError(f"allocation must be a 1-D vector, got shape {a.shape}")
    if np.any(a < -atol) or np.any(a > 1.0 + atol):
        raise ValueError(f"allocation fractions must lie in [0, 1], got {a}")
    total = float(a.sum())
    if abs(total - 1.0) > max(atol, 1e-9 * len(a)):
        raise ValueError(f"allocation fractions must sum to 1, got {total}")
    return np.clip(a, 0.0, 1.0)


@dataclass(frozen=True)
class HeterogeneousNetwork:
    """The system model of Figure 1: speeds, base-line rate, arrival rate.

    Parameters
    ----------
    speeds:
        Relative speeds sᵢ > 0 (need not be sorted).
    mu:
        Base-line job service rate μ (jobs/second for a speed-1 machine).
    arrival_rate:
        System job arrival rate λ.
    """

    speeds: np.ndarray
    mu: float
    arrival_rate: float

    def __init__(self, speeds, mu: float = 1.0, arrival_rate: float | None = None,
                 utilization: float | None = None):
        s = np.asarray(speeds, dtype=float)
        if s.ndim != 1 or s.size == 0:
            raise ValueError("speeds must be a non-empty 1-D vector")
        if np.any(s <= 0):
            raise ValueError(f"speeds must be positive, got {s}")
        if mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        if (arrival_rate is None) == (utilization is None):
            raise ValueError("specify exactly one of arrival_rate / utilization")
        if arrival_rate is None:
            if not 0.0 <= utilization < 1.0:
                raise ValueError(f"utilization must lie in [0, 1), got {utilization}")
            arrival_rate = utilization * mu * float(s.sum())
        if arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {arrival_rate}")
        object.__setattr__(self, "speeds", s)
        object.__setattr__(self, "mu", float(mu))
        object.__setattr__(self, "arrival_rate", float(arrival_rate))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return int(self.speeds.size)

    @property
    def total_speed(self) -> float:
        return float(self.speeds.sum())

    @property
    def capacity(self) -> float:
        """Aggregate service rate Σ sᵢμ."""
        return self.total_speed * self.mu

    @property
    def utilization(self) -> float:
        """System utilization ρ = λ / (μ Σsᵢ)."""
        return self.arrival_rate / self.capacity

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    def service_rates(self) -> np.ndarray:
        """Per-computer service rates sᵢμ."""
        return self.speeds * self.mu

    def with_utilization(self, utilization: float) -> "HeterogeneousNetwork":
        """Same computers, different load level."""
        return HeterogeneousNetwork(self.speeds, mu=self.mu, utilization=utilization)

    # ------------------------------------------------------------------
    # Per-allocation performance (paper equations (1)–(3))
    # ------------------------------------------------------------------

    def per_server_utilization(self, alphas) -> np.ndarray:
        """ρᵢ = αᵢλ / (sᵢμ)."""
        a = validate_allocation(alphas)
        self._match(a)
        return a * self.arrival_rate / self.service_rates()

    def _match(self, a: np.ndarray) -> None:
        if a.size != self.n:
            raise ValueError(f"allocation has {a.size} entries for {self.n} computers")

    def _denominators(self, a: np.ndarray) -> np.ndarray:
        """sᵢμ − αᵢλ, validated positive wherever αᵢ > 0."""
        denom = self.service_rates() - a * self.arrival_rate
        if np.any(denom[a > 0] <= 0):
            bad = np.nonzero((a > 0) & (denom <= 0))[0]
            raise ValueError(
                f"allocation saturates computer(s) {bad.tolist()}: alpha*lambda >= s*mu"
            )
        return denom

    def per_server_response_time(self, alphas) -> np.ndarray:
        """T̄ᵢ = 1 / (sᵢμ − αᵢλ); NaN for computers receiving no jobs."""
        a = validate_allocation(alphas)
        self._match(a)
        denom = self._denominators(a)
        out = np.full(self.n, np.nan)
        mask = a > 0
        out[mask] = 1.0 / denom[mask]
        return out

    def per_server_response_ratio(self, alphas) -> np.ndarray:
        """R̄ᵢ = μ / (sᵢμ − αᵢλ); NaN for computers receiving no jobs."""
        return self.mu * self.per_server_response_time(alphas)

    def mean_response_time(self, alphas) -> float:
        """T̄ = Σᵢ αᵢ / (sᵢμ − αᵢλ)   (paper equation (3))."""
        a = validate_allocation(alphas)
        self._match(a)
        denom = self._denominators(a)
        mask = a > 0
        return float(np.sum(a[mask] / denom[mask]))

    def mean_response_ratio(self, alphas) -> float:
        """R̄ = μ T̄."""
        return self.mu * self.mean_response_time(alphas)
