"""The paper's objective function F (Definition 1) and its calculus.

Minimizing the system mean response time T̄ = −n/λ + (1/λ) F(α) is
equivalent to minimizing

.. math::  F(\\alpha) = \\sum_i \\frac{s_i\\mu}{s_i\\mu - \\alpha_i\\lambda}

subject to Σαᵢ = 1 and 0 ≤ αᵢ < sᵢμ/λ.  F is strictly convex on the
feasible region (each term is convex in αᵢ), so the KKT solution of
Theorems 1–3 is the unique global minimum — which is what lets the
closed form and the scipy numerical solver be compared exactly.
"""

from __future__ import annotations

import numpy as np

from .network import HeterogeneousNetwork, validate_allocation

__all__ = [
    "objective_value",
    "objective_gradient",
    "theoretical_minimum",
    "response_time_from_objective",
]


def objective_value(network: HeterogeneousNetwork, alphas) -> float:
    """F(α) = Σ sᵢμ / (sᵢμ − αᵢλ)."""
    a = validate_allocation(alphas)
    if a.size != network.n:
        raise ValueError(f"allocation has {a.size} entries for {network.n} computers")
    rates = network.service_rates()
    denom = rates - a * network.arrival_rate
    if np.any(denom <= 0):
        raise ValueError("allocation saturates a computer: alpha*lambda >= s*mu")
    return float(np.sum(rates / denom))


def objective_gradient(network: HeterogeneousNetwork, alphas) -> np.ndarray:
    """∂F/∂αᵢ = sᵢμλ / (sᵢμ − αᵢλ)²."""
    a = validate_allocation(alphas)
    rates = network.service_rates()
    denom = rates - a * network.arrival_rate
    if np.any(denom <= 0):
        raise ValueError("allocation saturates a computer: alpha*lambda >= s*mu")
    return rates * network.arrival_rate / denom**2


def theoretical_minimum(network: HeterogeneousNetwork) -> float:
    """Theorem 1's minimum of F *ignoring* the αᵢ ≥ 0 constraints:

    .. math::  F^* = \\frac{(\\sum_j \\sqrt{s_j\\mu})^2}{\\sum_j s_j\\mu - \\lambda}.

    When some computers are slow enough that the unconstrained optimum
    goes negative, the true constrained minimum (Algorithm 1) is larger;
    applying this formula to the *active* subset gives the exact value.
    """
    if not network.stable:
        raise ValueError(f"system saturated: utilization={network.utilization:.4f}")
    rates = network.service_rates()
    return float(np.sum(np.sqrt(rates)) ** 2 / (rates.sum() - network.arrival_rate))


def response_time_from_objective(network: HeterogeneousNetwork, f_value: float) -> float:
    """Recover T̄ from F via T̄ = (F − n)/λ."""
    if network.arrival_rate <= 0:
        raise ValueError("response time undefined for zero arrival rate")
    return (f_value - network.n) / network.arrival_rate
