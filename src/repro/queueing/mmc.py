"""M/M/c (Erlang-C) results: the pooled central-queue reference.

The paper's architecture dedicates each job to one computer at dispatch
time.  The classical alternative is a *central queue* served by c equal
machines — no dispatch decision at all.  M/M/c gives that architecture
in closed form, providing an analytic reference point for the cluster
composition analyses (``examples/cluster_sizing.py``): how much of the
dispatch problem would disappear if the cluster were poolable?

Only homogeneous pools have the M/M/c form; the heterogeneous pooled
queue has no simple closed form, which is precisely why the paper's
dispatch-time problem is interesting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MMc", "erlang_c"]


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang's C formula: P(wait > 0) for M/M/c with a = λ/μ offered.

    Computed with the standard numerically stable recurrence on the
    Erlang-B blocking probability: B(0, a) = 1,
    B(k, a) = a·B(k−1, a) / (k + a·B(k−1, a)), then
    C = c·B / (c − a(1 − B)).
    """
    if servers < 1:
        raise ValueError(f"need at least one server, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered load must be non-negative, got {offered_load}")
    if offered_load >= servers:
        raise ValueError(
            f"unstable: offered load {offered_load} >= {servers} servers"
        )
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return servers * b / (servers - offered_load * (1.0 - b))


@dataclass(frozen=True)
class MMc:
    """M/M/c queue: Poisson(λ) arrivals, c servers each at rate μ."""

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self):
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate}")
        if self.servers < 1:
            raise ValueError(f"need at least one server, got {self.servers}")

    @property
    def offered_load(self) -> float:
        """a = λ/μ (in Erlangs)."""
        return self.arrival_rate / self.service_rate

    @property
    def rho(self) -> float:
        """Per-server utilization a/c."""
        return self.offered_load / self.servers

    @property
    def stable(self) -> bool:
        return self.rho < 1.0

    def _check(self) -> None:
        if not self.stable:
            raise ValueError(f"queue unstable: rho={self.rho:.4f} >= 1")

    @property
    def probability_of_waiting(self) -> float:
        """Erlang C: the fraction of jobs that queue at all."""
        self._check()
        return erlang_c(self.servers, self.offered_load)

    @property
    def mean_waiting_time(self) -> float:
        """W = C / (cμ − λ)."""
        self._check()
        return self.probability_of_waiting / (
            self.servers * self.service_rate - self.arrival_rate
        )

    @property
    def mean_response_time(self) -> float:
        self._check()
        return self.mean_waiting_time + 1.0 / self.service_rate

    @property
    def mean_number_in_system(self) -> float:
        """Little's law on the response time."""
        self._check()
        return self.arrival_rate * self.mean_response_time

    def pooling_gain_vs_split(self) -> float:
        """Response-time ratio of c separate M/M/1 queues (each fed λ/c)
        to this pooled M/M/c — the classical resource-pooling gain,
        always ≥ 1 and growing with c and ρ."""
        self._check()
        split = 1.0 / (self.service_rate - self.arrival_rate / self.servers)
        return split / self.mean_response_time
