"""M/G/1 results: Pollaczek–Khinchine (FCFS) and PS insensitivity.

The simulation uses Bounded Pareto service times, i.e. M(λ)/G/1 per
server when arrivals are Poisson.  Two classical facts anchor the
validation tests:

* **FCFS**: mean wait W = λ E[S²] / (2(1 − ρ)) — heavily penalized by the
  huge second moment of heavy-tailed sizes.
* **PS**: mean response T = E[S] / (1 − ρ), *independent of the service
  distribution beyond its mean* (insensitivity).  This is why the paper's
  M/M/1-based allocation optimum remains the right objective under
  Bounded Pareto sizes, and why PS/round-robin CPU scheduling is the
  sensible discipline for heavy-tailed work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributions.base import Distribution

__all__ = ["MG1"]


@dataclass(frozen=True)
class MG1:
    """M/G/1 queue: Poisson(λ) arrivals, generic service distribution."""

    arrival_rate: float
    service: Distribution

    def __post_init__(self):
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate}")

    @property
    def rho(self) -> float:
        return self.arrival_rate * self.service.mean

    @property
    def stable(self) -> bool:
        return self.rho < 1.0

    def _check(self) -> None:
        if not self.stable:
            raise ValueError(f"queue unstable: rho={self.rho:.4f} >= 1")

    # ------------------------------------------------------------------
    # FCFS (Pollaczek–Khinchine)
    # ------------------------------------------------------------------

    @property
    def mean_waiting_time_fcfs(self) -> float:
        """W = λ E[S²] / (2 (1 − ρ))."""
        self._check()
        return self.arrival_rate * self.service.second_moment / (2.0 * (1.0 - self.rho))

    @property
    def mean_response_time_fcfs(self) -> float:
        self._check()
        return self.service.mean + self.mean_waiting_time_fcfs

    # ------------------------------------------------------------------
    # Processor sharing
    # ------------------------------------------------------------------

    @property
    def mean_response_time_ps(self) -> float:
        """T = E[S] / (1 − ρ), insensitive to the service distribution."""
        self._check()
        return self.service.mean / (1.0 - self.rho)

    @property
    def mean_response_ratio_ps(self) -> float:
        """E[T/S] = 1 / (1 − ρ): every job is slowed by the same factor
        in expectation under PS (conditional response is linear in size)."""
        self._check()
        return 1.0 / (1.0 - self.rho)

    def conditional_response_ps(self, size: float) -> float:
        """E[T | S = t] = t / (1 − ρ)."""
        self._check()
        if size < 0:
            raise ValueError(f"job size must be non-negative, got {size}")
        return size / (1.0 - self.rho)

    @property
    def fcfs_to_ps_response_ratio(self) -> float:
        """mean_response_time_fcfs / mean_response_time_ps — the price of
        FCFS under this service distribution (large for heavy tails)."""
        self._check()
        return self.mean_response_time_fcfs / self.mean_response_time_ps
