"""Single-server M/M/1 results used in the paper's analysis (Section 2.3).

Under processor sharing (PS) the expected response time of a job of size
``t`` on a server with utilization ρ is ``t / (1 − ρ)`` — equation used to
derive (1) and (2) of the paper.  The same conditional form holds for
M/G/1-PS by the celebrated insensitivity property, which is why the
paper's exponential-service analysis carries over to Bounded Pareto job
sizes in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MM1", "ps_conditional_response", "require_stable"]


def require_stable(rho: float) -> float:
    """Validate a utilization value for a stable queue (0 ≤ ρ < 1)."""
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"queue unstable or invalid utilization: rho={rho}")
    return float(rho)


def ps_conditional_response(size: float, rho: float) -> float:
    """E[T | job size = t] = t / (1 − ρ) for an M/·/1-PS server."""
    require_stable(rho)
    if size < 0:
        raise ValueError(f"job size must be non-negative, got {size}")
    return size / (1.0 - rho)


@dataclass(frozen=True)
class MM1:
    """M/M/1 queue with arrival rate λ and service rate μ.

    Exposes both the FCFS and PS views.  Mean response time and mean
    number-in-system coincide for FCFS and PS in M/M/1; the *distribution*
    and the per-size conditional response differ.
    """

    arrival_rate: float
    service_rate: float

    def __post_init__(self):
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate}")

    @property
    def rho(self) -> float:
        """Server utilization λ/μ."""
        return self.arrival_rate / self.service_rate

    @property
    def stable(self) -> bool:
        return self.rho < 1.0

    def _check(self) -> None:
        if not self.stable:
            raise ValueError(f"queue unstable: rho={self.rho:.4f} >= 1")

    @property
    def mean_response_time(self) -> float:
        """T̄ = 1 / (μ − λ)   (paper equation (1) with mean size 1/μ)."""
        self._check()
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def mean_response_ratio(self) -> float:
        """R̄ = 1 / (1 − ρ) for unit-speed server (paper equation (2)).

        For a server of relative speed s the paper adds a 1/s factor to
        translate response *time* into response *ratio* — see
        :mod:`repro.queueing.network`.
        """
        self._check()
        return 1.0 / (1.0 - self.rho)

    @property
    def mean_number_in_system(self) -> float:
        """L = ρ / (1 − ρ) (Little's law applied to T̄)."""
        self._check()
        return self.rho / (1.0 - self.rho)

    @property
    def mean_waiting_time_fcfs(self) -> float:
        """FCFS waiting time W = ρ / (μ − λ)."""
        self._check()
        return self.rho / (self.service_rate - self.arrival_rate)

    def conditional_response_ps(self, size: float) -> float:
        """PS conditional response for a job of the given size."""
        self._check()
        return ps_conditional_response(size, self.rho)
