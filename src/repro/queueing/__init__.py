"""Queueing-theoretic substrate: the analytical models behind Section 2.

* :class:`MM1` / :class:`MG1` — single-server building blocks (FCFS and
  processor-sharing views, P-K formula, PS insensitivity).
* :class:`HeterogeneousNetwork` — the paper's n-computer model with
  equations (1)–(3) for mean response time / response ratio.
* :mod:`~repro.queueing.objective` — the objective function F of
  Definition 1 plus Theorem 1's closed-form minimum.
* :class:`GG1Approximation` — Kingman/Allen–Cunneen envelopes for the
  non-Poisson (hyperexponential) arrival case.
"""

from .gg1 import GG1Approximation, allen_cunneen_waiting_time, kingman_waiting_time
from .mg1 import MG1
from .mmc import MMc, erlang_c
from .mm1 import MM1, ps_conditional_response, require_stable
from .network import HeterogeneousNetwork, validate_allocation
from .objective import (
    objective_gradient,
    objective_value,
    response_time_from_objective,
    theoretical_minimum,
)

__all__ = [
    "MM1",
    "MG1",
    "MMc",
    "erlang_c",
    "GG1Approximation",
    "HeterogeneousNetwork",
    "validate_allocation",
    "objective_value",
    "objective_gradient",
    "theoretical_minimum",
    "response_time_from_objective",
    "ps_conditional_response",
    "require_stable",
    "kingman_waiting_time",
    "allen_cunneen_waiting_time",
]
