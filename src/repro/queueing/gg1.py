"""G/G/1 waiting-time approximations.

The paper's arrival process is *not* Poisson (hyperexponential with
CV = 3), so the per-server queues in the simulation are really
H2/G/1-PS.  No closed form exists, but the Allen–Cunneen / Kingman
heavy-traffic style approximation

.. math::  W \\approx \\frac{c_a^2 + c_s^2}{2} \\cdot W_{M/M/1}

quantifies how arrival burstiness inflates waiting — the effect the
round-robin dispatcher attacks by smoothing each computer's substream.
These approximations are used for sanity envelopes in tests and for the
analysis notes in EXPERIMENTS.md, not inside the optimizer (the paper's
optimizer deliberately sticks to the M/M/1 model).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GG1Approximation", "kingman_waiting_time", "allen_cunneen_waiting_time"]


def _validate(arrival_rate: float, service_rate: float) -> float:
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be non-negative, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive, got {service_rate}")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise ValueError(f"queue unstable: rho={rho:.4f} >= 1")
    return rho


def kingman_waiting_time(
    arrival_rate: float, service_rate: float, ca2: float, cs2: float
) -> float:
    """Kingman's G/G/1 upper bound / heavy-traffic approximation.

    W ≈ (ρ / (1 − ρ)) · (c_a² + c_s²)/2 · (1/μ).
    """
    rho = _validate(arrival_rate, service_rate)
    if ca2 < 0 or cs2 < 0:
        raise ValueError("squared CVs must be non-negative")
    return (rho / (1.0 - rho)) * ((ca2 + cs2) / 2.0) / service_rate


def allen_cunneen_waiting_time(
    arrival_rate: float, service_rate: float, ca2: float, cs2: float
) -> float:
    """Allen–Cunneen approximation — identical to Kingman for one server.

    Kept as a named alias because multi-server extensions differ; for
    c = 1 both reduce to the same expression.
    """
    return kingman_waiting_time(arrival_rate, service_rate, ca2, cs2)


@dataclass(frozen=True)
class GG1Approximation:
    """Approximate G/G/1 queue characterized by rates and squared CVs."""

    arrival_rate: float
    service_rate: float
    ca2: float = 1.0
    cs2: float = 1.0

    @property
    def rho(self) -> float:
        return _validate(self.arrival_rate, self.service_rate)

    @property
    def mean_waiting_time(self) -> float:
        return kingman_waiting_time(self.arrival_rate, self.service_rate, self.ca2, self.cs2)

    @property
    def mean_response_time(self) -> float:
        return self.mean_waiting_time + 1.0 / self.service_rate

    @property
    def burstiness_multiplier(self) -> float:
        """Waiting-time inflation relative to M/M/1: (c_a² + c_s²)/2."""
        return (self.ca2 + self.cs2) / 2.0
