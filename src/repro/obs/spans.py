"""Span tracing: the collector every subsystem emits into.

A *span* is one timed region of work — ``with span("replay", server=3):``
— and a *counter event* is one named value observed at a point in time.
Both are dispatched to whatever sinks are registered:

* :class:`JsonlSink` — structured JSONL written with single ``O_APPEND``
  writes, so concurrent grid workers (and threads) interleave whole
  lines, never bytes.  This is what ``--trace out.jsonl`` installs.
* :class:`~repro.obs.profile.ProfileSink` — in-process aggregation into
  per-phase wall-time totals (``--profile``).

Zero overhead when disabled is a hard requirement (the bench harness
guards it): with no sinks registered, :func:`span` returns a shared
no-op singleton — one function call, one global check, no allocation —
and :func:`emit_counter` returns immediately.  Telemetry never touches
any RNG and never changes a computed value, so results are bit-identical
with tracing on or off.

Worker processes inherit tracing automatically: :func:`enable_tracing`
records the target path in ``REPRO_TRACE``, forked workers share the
already-open ``O_APPEND`` descriptor, and spawned workers re-install a
sink from the environment variable on first import.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "SCHEMA_VERSION",
    "span",
    "emit_counter",
    "tracing_enabled",
    "add_sink",
    "remove_sink",
    "JsonlSink",
    "enable_tracing",
    "disable_tracing",
    "validate_event",
]

#: Bumped whenever an emitted event gains/loses/renames a required field.
SCHEMA_VERSION = 1

_lock = threading.RLock()
_sinks: list = []  # empty list == telemetry disabled (the common case)
_local = threading.local()  # per-thread span stack (only used when enabled)
_env_sink: "JsonlSink | None" = None  # sink installed from $REPRO_TRACE


class _NoopSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Span:
    """One live span: times itself and emits an event on exit.

    Tracks the time spent in child spans so the emitted event carries
    both the inclusive duration (``dur``) and the exclusive self time
    (``self``) — the latter is what flamegraph folding wants.
    """

    __slots__ = ("name", "attrs", "_ts", "_t0", "_child")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self._child = 0.0

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span (e.g. a backend name)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dur = time.perf_counter() - self._t0
        stack = _local.stack
        names = [s.name for s in stack]
        stack.pop()
        if stack:
            stack[-1]._child += dur
        _dispatch(
            {
                "v": SCHEMA_VERSION,
                "kind": "span",
                "name": self.name,
                "stack": names,
                "ts": self._ts,
                "dur": dur,
                "self": max(0.0, dur - self._child),
                "pid": os.getpid(),
                "attrs": self.attrs,
            }
        )
        return False


def span(name: str, **attrs):
    """A timed region; a shared no-op when no sink is registered."""
    if not _sinks:
        return _NOOP
    return _Span(name, attrs)


def emit_counter(name: str, value, **attrs) -> None:
    """Emit one counter observation event (no-op when disabled)."""
    if not _sinks:
        return
    _dispatch(
        {
            "v": SCHEMA_VERSION,
            "kind": "counter",
            "name": name,
            "value": value,
            "ts": time.time(),
            "pid": os.getpid(),
            "attrs": attrs,
        }
    )


def tracing_enabled() -> bool:
    """True when at least one sink is registered."""
    return bool(_sinks)


def _dispatch(event: dict) -> None:
    # A sink that starts failing (full disk, closed fd) must never take
    # the simulation down with it: drop it after the first error.
    with _lock:
        for sink in list(_sinks):
            try:
                sink.handle(event)
            except Exception:  # noqa: BLE001 — telemetry must not break runs
                _sinks.remove(sink)


def add_sink(sink) -> None:
    """Register a sink; spans become live once the first sink lands."""
    with _lock:
        if sink not in _sinks:
            _sinks.append(sink)


def remove_sink(sink) -> None:
    """Unregister a sink (no-op if absent); closes it when closable."""
    with _lock:
        if sink in _sinks:
            _sinks.remove(sink)
    close = getattr(sink, "close", None)
    if close is not None:
        try:
            close()
        except OSError:
            pass


class JsonlSink:
    """Appends one compact JSON line per event.

    The descriptor is opened ``O_APPEND`` and every event is written in
    a single ``os.write`` — on POSIX that makes concurrent writers
    (threads, forked grid workers sharing the fd, spawned workers with
    their own fd on the same path) interleave whole lines.
    """

    def __init__(self, path):
        self.path = str(path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def handle(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        os.write(self._fd, line.encode())

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError:
            pass


def enable_tracing(path) -> JsonlSink:
    """Install a :class:`JsonlSink` on *path* and propagate to workers.

    ``REPRO_TRACE`` is set to the absolute path so worker processes
    started with the *spawn* method re-install their own sink on import;
    *fork* workers simply inherit the open descriptor.
    """
    global _env_sink
    sink = JsonlSink(path)
    add_sink(sink)
    _env_sink = sink
    os.environ["REPRO_TRACE"] = os.path.abspath(str(path))
    return sink


def disable_tracing() -> None:
    """Remove the sink installed by :func:`enable_tracing`, if any."""
    global _env_sink
    if _env_sink is not None:
        remove_sink(_env_sink)
        _env_sink = None
    os.environ.pop("REPRO_TRACE", None)


def _maybe_enable_from_env() -> None:
    """Auto-install a sink in processes spawned with ``REPRO_TRACE`` set."""
    path = os.environ.get("REPRO_TRACE")
    if path and _env_sink is None:
        try:
            globals()["_env_sink"] = JsonlSink(path)
            add_sink(_env_sink)
        except OSError:
            pass


_maybe_enable_from_env()


#: Required fields (and their types) per event kind, schema v1.
_COMMON_FIELDS = {"v": int, "kind": str, "name": str, "ts": float,
                  "pid": int, "attrs": dict}
_KIND_FIELDS = {
    "span": {"dur": float, "self": float, "stack": list},
    "counter": {"value": (int, float)},
}


def validate_event(event: dict) -> None:
    """Raise ``ValueError`` unless *event* is schema-valid (v1).

    This is the single source of truth the trace tests validate emitted
    JSONL against — no third-party JSON-schema dependency needed.
    """
    if not isinstance(event, dict):
        raise ValueError(f"event must be an object, got {type(event).__name__}")
    kind = event.get("kind")
    if kind not in _KIND_FIELDS:
        raise ValueError(f"unknown event kind {kind!r}")
    required = dict(_COMMON_FIELDS)
    required.update(_KIND_FIELDS[kind])
    for field_name, types in required.items():
        if field_name not in event:
            raise ValueError(f"{kind} event missing field {field_name!r}")
        value = event[field_name]
        ok_types = types if isinstance(types, tuple) else (types,)
        # bools are ints in Python; never valid for numeric fields here.
        if isinstance(value, bool) or not isinstance(value, ok_types):
            raise ValueError(
                f"{kind} event field {field_name!r} has type "
                f"{type(value).__name__}, expected {types}"
            )
    if event["v"] != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {event['v']!r}")
    if kind == "span":
        if event["dur"] < 0 or event["self"] < 0:
            raise ValueError("span durations must be non-negative")
        stack = event["stack"]
        if not stack or stack[-1] != event["name"]:
            raise ValueError("span stack must end with the span's own name")
        if not all(isinstance(s, str) for s in stack):
            raise ValueError("span stack entries must be strings")
