"""Result digests: SHA-256 fingerprints of packed metric vectors.

The bit-identity promises in this repo (serial == grid == cell-batched
== Python-kernel) are all statements about *float arrays being equal to
the last bit*.  A digest turns one result object into a short stable
hex string, so golden tests can pin a constant and any execution path
that drifts — kernel change, summation reorder, RNG regression — fails
loudly with a one-line diff instead of a wall of floats.

All arrays are packed as little-endian float64 with name and shape
separators, making digests portable across platforms and insensitive
to dict ordering.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["digest_arrays", "sweep_digest", "figure2_digest", "results_digest"]


def digest_arrays(named_arrays) -> str:
    """SHA-256 over ``(name, array)`` pairs, order-sensitive.

    Each array is cast to little-endian float64 (an exact, lossless
    re-encoding for float64 inputs and for the int counters we digest)
    so byte layout never depends on the producing platform.
    """
    h = hashlib.sha256()
    for name, arr in named_arrays:
        a = np.ascontiguousarray(np.asarray(arr, dtype="<f8"))
        h.update(name.encode())
        h.update(b"|")
        h.update(str(a.shape).encode())
        h.update(b"|")
        h.update(a.tobytes())
        h.update(b";")
    return h.hexdigest()


def sweep_digest(result, metrics=("mean_response_time", "mean_response_ratio")) -> str:
    """Digest of a :class:`~repro.experiments.base.SweepResult`.

    Packs the per-policy metric-mean series plus x values and the
    per-cell dispatch fractions — enough to catch any numeric drift in
    the replicated paper metrics while staying independent of timings,
    cache statistics, and other run-shape bookkeeping.
    """
    parts = [("x", np.asarray(result.x_values, dtype=float))]
    for policy in result.policies:
        for metric in metrics:
            parts.append((f"{policy}.{metric}", result.series(policy, metric)))
        fractions = [
            result.cells[x][policy].dispatch_fractions
            for x in result.x_values
            if policy in result.cells.get(x, {})
        ]
        if fractions:
            parts.append((f"{policy}.dispatch_fractions", np.concatenate(fractions)))
    return digest_arrays(parts)


def figure2_digest(result) -> str:
    """Digest of a :class:`~repro.experiments.figure2.Figure2Result`."""
    return digest_arrays(
        [
            ("round_robin", result.round_robin.deviations),
            ("random", result.random.deviations),
        ]
    )


def results_digest(results) -> str:
    """Digest of one :class:`~repro.sim.results.SimulationResults`.

    Covers the response metrics, the per-server ledger, and the
    dispatch fractions — the quantities every execution path must
    reproduce bit-identically for the same seed.
    """
    m = results.metrics
    return digest_arrays(
        [
            (
                "metrics",
                [m.mean_response_time, m.mean_response_ratio, m.fairness, m.jobs],
            ),
            ("dispatch_fractions", results.dispatch_fractions),
            ("received", [s.jobs_received for s in results.servers]),
            ("completed", [s.jobs_completed for s in results.servers]),
            ("busy", [s.busy_time for s in results.servers]),
            ("arrivals", [results.total_arrivals]),
        ]
    )
