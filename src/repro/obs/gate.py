"""Perf-regression gate: compare a fresh bench record to the baseline.

``repro bench --gate`` runs the normal bench suite, then hands the new
record and the trajectory history from ``BENCH_sweep.json`` to
:func:`check_gate` instead of appending.  The gate fails (CLI exits
nonzero, nothing appended) on either:

* **bit-identity divergence** — any of the recorded agreement flags
  (``replication.*.agree``, ``sweep.grid_identical``,
  ``cell.cell_identical``, ``telemetry.trace_identical``) is false in
  the new record, regardless of threshold; or
* **perf regression** — a tracked *speedup ratio* dropped more than
  ``threshold`` (default 20%) below the baseline.  Ratios of two
  timings taken on the same box are compared, never absolute seconds,
  so the gate ports across machines of different absolute speed; or
* **floor violation** — a ratio with an absolute per-scale floor (e.g.
  ``cell.cell_speedup`` >= 2.0x at quick scale) came in below it, even
  when no baseline exists for the relative comparison.

The baseline is the most recent prior record at the same scale (same
work → comparable ratios); with no comparable baseline the gate passes
vacuously, reporting why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "GateResult",
    "check_gate",
    "DEFAULT_THRESHOLD",
    "NET_DISPATCH_CEILING_NS",
]

#: ">20% slowdown" from the issue spec.
DEFAULT_THRESHOLD = 0.20

#: Speedup ratios tracked by the gate, as (dotted path, description).
_RATIOS = (
    ("kernels.fcfs_speedup", "FCFS kernel vs loop"),
    ("kernels.ps_speedup", "PS kernel vs loop"),
    ("replication.ps.speedup", "PS fast path vs engine"),
    ("replication.fcfs.speedup", "FCFS fast path vs engine"),
    ("sweep.cache_speedup", "warm cache vs cold sweep"),
    ("cell.cell_speedup", "cell-batched vs flat sweep"),
    ("serve.serve_speedup", "vectorized serve loop vs reference"),
)

#: Bit-identity flags that must be true whenever present.
_IDENTITY_FLAGS = (
    "replication.ps.agree",
    "replication.fcfs.agree",
    "sweep.grid_identical",
    "cell.cell_identical",
    "telemetry.trace_identical",
    "kernels.fcfs_bit_identical",
    "serve.report_identical",
    "net.report_identical",
    "net.overload_report_identical",
    "net.rejoin_report_identical",
    "net.balanced_no_shed",
)

#: Absolute ratio floors enforced per scale, independent of any baseline:
#: (dotted path, scale name, minimum value, description, guard).  Floors
#: pin the acceptance criteria that motivated an optimization so a later
#: change cannot erode them 19% at a time under the relative threshold.
#: The guard — ``None`` or a (dotted path, value) pair — limits a floor
#: to records where that field matches (the serve floor assumes the
#: compiled kernel; the pure-python fallback is correct but slower).
_FLOORS = (
    ("cell.cell_speedup", "quick", 2.0, "cell-batched vs flat sweep (fcfs)",
     None),
    ("serve.serve_speedup", "quick", 5.0, "vectorized serve loop vs reference",
     ("serve.backend", "c")),
)

#: Ceiling on the networked dispatch-decision latency, in ns per job.
#: Deliberately generous — the decision plane runs a few vectorized
#: folds per window, so even a slow shared runner sits an order of
#: magnitude under it; breaching it means per-job Python crept back
#: into the hot path.  ``bench --net`` enforces it inline (nothing is
#: appended on a breach) and the gate re-checks recorded values.
NET_DISPATCH_CEILING_NS = 25_000.0

#: Absolute ceilings on latency-like metrics: (dotted path, scale name
#: or None for all scales, maximum value, description, guard).
_CEILINGS = (
    ("net.dispatch_ns_per_job", None, NET_DISPATCH_CEILING_NS,
     "networked dispatch decision latency per job (ns)", None),
)


def _lookup(record: dict, dotted: str):
    node = record
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


@dataclass
class GateResult:
    """Outcome of one gate evaluation."""

    passed: bool
    threshold: float
    baseline_timestamp: Optional[str] = None
    failures: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = []
        verdict = "PASS" if self.passed else "FAIL"
        base = self.baseline_timestamp or "none"
        lines.append(
            f"perf gate: {verdict} "
            f"(threshold {self.threshold:.0%}, baseline {base})"
        )
        lines.extend(f"  FAIL: {f}" for f in self.failures)
        lines.extend(f"  {n}" for n in self.notes)
        return "\n".join(lines)


def find_baseline(history: List[dict], record: dict) -> Optional[dict]:
    """Most recent prior record at the same scale, or None."""
    scale = record.get("scale")
    for prior in reversed(history):
        if prior is not record and prior.get("scale") == scale:
            return prior
    return None


def check_gate(
    record: dict,
    history: List[dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> GateResult:
    """Evaluate *record* against the trajectory *history*."""
    result = GateResult(passed=True, threshold=threshold)

    # Bit-identity is non-negotiable at any threshold.
    for flag in _IDENTITY_FLAGS:
        value = _lookup(record, flag)
        if value is False:
            result.passed = False
            result.failures.append(f"bit-identity divergence: {flag} is false")

    # Absolute floors apply even with no baseline to compare against.
    for path, scale, minimum, label, guard in _FLOORS:
        if record.get("scale") != scale:
            continue
        if guard is not None and _lookup(record, guard[0]) != guard[1]:
            continue
        value = _lookup(record, path)
        if isinstance(value, (int, float)) and value < minimum:
            result.passed = False
            result.failures.append(
                f"{label} ({path}): {value:.2f}x below the "
                f"{minimum:.1f}x floor at scale {scale!r}"
            )

    # Absolute ceilings: same shape as floors, opposite direction.
    for path, scale, maximum, label, guard in _CEILINGS:
        if scale is not None and record.get("scale") != scale:
            continue
        if guard is not None and _lookup(record, guard[0]) != guard[1]:
            continue
        value = _lookup(record, path)
        if isinstance(value, (int, float)) and value > maximum:
            result.passed = False
            result.failures.append(
                f"{label} ({path}): {value:.0f} above the "
                f"{maximum:.0f} ceiling"
            )

    baseline = find_baseline(history, record)
    if baseline is None:
        result.notes.append(
            f"no baseline at scale {record.get('scale')!r}; "
            "ratio checks skipped"
        )
        return result
    result.baseline_timestamp = baseline.get("timestamp")

    for path, label in _RATIOS:
        new = _lookup(record, path)
        old = _lookup(baseline, path)
        if not isinstance(new, (int, float)) or not isinstance(old, (int, float)):
            continue  # section absent in one of the two records
        if old <= 0:
            continue
        drop = 1.0 - new / old
        if drop > threshold:
            result.passed = False
            result.failures.append(
                f"{label} ({path}): {old:.2f}x -> {new:.2f}x "
                f"({drop:.0%} slowdown > {threshold:.0%})"
            )
        else:
            result.notes.append(
                f"{label}: {old:.2f}x -> {new:.2f}x ({-drop:+.0%})"
            )
    return result
