"""Observability layer: span tracing, run counters, profiling, gates.

Four small pieces, one import surface:

* :mod:`~repro.obs.spans` — ``span()`` timed regions and the sink
  registry; ``--trace`` writes structured JSONL through it.
* :mod:`~repro.obs.counters` — always-on run-level tallies (job ledger,
  cache hit/miss, kernel engagement, worker restarts) with worker-delta
  shipping so parallel paths report the same totals as serial ones.
* :mod:`~repro.obs.profile` — per-phase wall-time breakdown and folded
  flamegraph output behind ``--profile``.
* :mod:`~repro.obs.gate` / :mod:`~repro.obs.digest` — perf-regression
  gating against the BENCH trajectory and SHA digests for golden
  bit-identity tests.

Telemetry is strictly read-only with respect to simulation state: it
never draws randomness and never alters a computed value, so outputs
are bit-identical whether tracing is on or off — and with no sinks
registered the whole layer costs one predicate per call site.
"""

from . import counters
from .digest import digest_arrays, figure2_digest, results_digest, sweep_digest
from .gate import DEFAULT_THRESHOLD, GateResult, check_gate
from .profile import PHASES, ProfileSink
from .spans import (
    SCHEMA_VERSION,
    JsonlSink,
    add_sink,
    disable_tracing,
    emit_counter,
    enable_tracing,
    remove_sink,
    span,
    tracing_enabled,
    validate_event,
)

__all__ = [
    "counters",
    "span",
    "emit_counter",
    "tracing_enabled",
    "add_sink",
    "remove_sink",
    "JsonlSink",
    "enable_tracing",
    "disable_tracing",
    "validate_event",
    "SCHEMA_VERSION",
    "ProfileSink",
    "PHASES",
    "GateResult",
    "check_gate",
    "DEFAULT_THRESHOLD",
    "digest_arrays",
    "sweep_digest",
    "figure2_digest",
    "results_digest",
]
