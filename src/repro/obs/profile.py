"""Phase profiler: per-phase wall-time breakdowns from span events.

``--profile`` installs a :class:`ProfileSink`, runs the command, and
prints a table of the canonical phases (materialize / dispatch / replay
/ summarize, plus whatever else emitted spans) with inclusive time,
self time, and call counts.  ``report.folded()`` renders the same data
as Brendan Gregg's folded-stack format — one ``a;b;c <count>`` line per
unique stack, weighted in microseconds of self time — which
``flamegraph.pl`` and speedscope ingest directly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["ProfileSink", "PHASES"]

#: Canonical pipeline phases, in execution order — the table leads with
#: these so the breakdown reads like the data flow.
PHASES = ("materialize", "dispatch", "replay", "summarize")


class ProfileSink:
    """Aggregates span events into per-name and per-stack totals."""

    def __init__(self):
        # name -> [inclusive, self, count]; stack tuple -> self seconds
        self.by_name: Dict[str, List[float]] = {}
        self.by_stack: Dict[Tuple[str, ...], float] = {}

    def handle(self, event: dict) -> None:
        if event.get("kind") != "span":
            return
        row = self.by_name.setdefault(event["name"], [0.0, 0.0, 0])
        row[0] += event["dur"]
        row[1] += event["self"]
        row[2] += 1
        stack = tuple(event["stack"])
        self.by_stack[stack] = self.by_stack.get(stack, 0.0) + event["self"]

    def folded(self) -> str:
        """Folded-stack lines (``a;b;c <microseconds>``) for flamegraphs."""
        lines = []
        for stack, self_time in sorted(self.by_stack.items()):
            us = int(round(self_time * 1e6))
            if us > 0:
                lines.append(f"{';'.join(stack)} {us}")
        return "\n".join(lines)

    def table(self) -> str:
        """Human-readable per-phase breakdown, canonical phases first."""
        if not self.by_name:
            return "(no spans recorded)"
        ordered = [p for p in PHASES if p in self.by_name]
        ordered += sorted(n for n in self.by_name if n not in PHASES)
        width = max(len(n) for n in ordered)
        total_self = sum(r[1] for r in self.by_name.values()) or 1.0
        out = [f"{'phase':<{width}}  {'incl (s)':>10}  {'self (s)':>10}  "
               f"{'calls':>8}  {'self %':>7}"]
        for name in ordered:
            incl, self_t, count = self.by_name[name]
            out.append(
                f"{name:<{width}}  {incl:>10.4f}  {self_t:>10.4f}  "
                f"{count:>8d}  {100.0 * self_t / total_self:>6.1f}%"
            )
        return "\n".join(out)
