"""Run-level counters: cheap monotonic tallies surfaced in results.

Counters answer "did the machinery actually engage?" — cache hits,
kernel version used, stream-pool reuse, worker restarts, and the job
conservation ledger (dispatched / completed / lost / retried, per
server and aggregate).  Unlike spans they are always on: a counter
bump is one dict ``+=`` under a lock, cheap enough to leave in the hot
path unconditionally, and the values feed the differential tests that
assert serial / grid / cell-batched / ckernel paths agree.

Keys are flat strings with optional sorted ``{k=v}`` labels::

    jobs.completed{server=3}
    cache.hit
    kernel.engaged{name=ps, backend=c}

Worker processes tally into their own registry; the executor ships each
worker's *delta* (via :func:`diff_since` on a snapshot taken before the
task) back in the result tuple and the parent :func:`merge`\\ s it, so a
parallel sweep ends with the same totals as a serial one.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping

from .spans import emit_counter

__all__ = [
    "key",
    "parse_key",
    "inc",
    "snapshot",
    "diff_since",
    "merge",
    "reset",
    "record_run",
    "scoped",
]

_lock = threading.Lock()
_counters: Dict[str, float] = {}


def key(name: str, **labels) -> str:
    """Build the canonical counter key: ``name{a=1, b=x}`` (labels sorted)."""
    if not labels:
        return name
    body = ", ".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{body}}}"


def parse_key(counter_key: str):
    """Inverse of :func:`key`: ``(name, labels_dict)``."""
    if not counter_key.endswith("}") or "{" not in counter_key:
        return counter_key, {}
    name, _, body = counter_key.partition("{")
    labels = {}
    for part in body[:-1].split(", "):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def inc(name: str, value: float = 1, **labels) -> None:
    """Add *value* to the counter (also mirrored to trace sinks, if any)."""
    k = key(name, **labels)
    with _lock:
        _counters[k] = _counters.get(k, 0) + value
    emit_counter(name, value, **labels)


def snapshot() -> Dict[str, float]:
    """Copy of all counters right now."""
    with _lock:
        return dict(_counters)


def diff_since(before: Mapping[str, float]) -> Dict[str, float]:
    """Counters accumulated since *before* (a :func:`snapshot`), nonzero only."""
    with _lock:
        now = dict(_counters)
    delta = {}
    for k, v in now.items():
        d = v - before.get(k, 0)
        if d:
            delta[k] = d
    return delta


def merge(delta: Mapping[str, float]) -> None:
    """Fold a worker's counter delta into this process's registry."""
    if not delta:
        return
    with _lock:
        for k, v in delta.items():
            _counters[k] = _counters.get(k, 0) + v


def reset() -> None:
    """Zero everything (tests and per-command CLI scoping)."""
    with _lock:
        _counters.clear()


class scoped:
    """Context manager capturing the counter delta over a region.

    ``with scoped() as delta: ...`` leaves the accumulated counters in
    ``delta`` (a plain dict) on exit; the global registry is untouched.
    """

    def __enter__(self) -> Dict[str, float]:
        self._before = snapshot()
        self._delta: Dict[str, float] = {}
        return self._delta

    def __exit__(self, *exc) -> bool:
        self._delta.update(diff_since(self._before))
        return False


def record_run(results) -> None:
    """Tally the job-conservation ledger from one SimulationResults.

    Called once per completed replication (any execution path), so the
    per-server and aggregate ledgers match across serial / grid / cell
    runs of the same work:

    * ``jobs.dispatched{server=i}`` — arrivals routed to server *i*
    * ``jobs.completed{server=i}`` — departures observed at server *i*
    * ``jobs.lost`` / ``jobs.retried`` / ``jobs.pending_retry`` — fault
      ledger (zero and absent in fault-free runs)
    * ``runs.completed`` — replication count

    The per-run ledger itself is computed by
    :meth:`repro.sim.results.SimulationResults.counters`, so the global
    registry and a single result object can never disagree.
    """
    merge(results.counters())
