"""repro — reproduction of Tang & Chanson, "Optimizing Static Job
Scheduling in a Network of Heterogeneous Computers" (ICPP 2000).

Quick tour
----------

>>> from repro import SimulationConfig, evaluate_policy, get_policy
>>> config = SimulationConfig(speeds=(1, 1, 10, 10), utilization=0.7,
...                           duration=5e4)
>>> orr = evaluate_policy(config, get_policy("ORR"), replications=3)
>>> wrr = evaluate_policy(config, get_policy("WRR"), replications=3)
>>> orr.mean_response_ratio.mean < wrr.mean_response_ratio.mean
True

Package map
-----------

* :mod:`repro.core` — scheduling policies (ORR/WRR/ORAN/WRAN/Least-Load)
  and the replicated evaluation protocol.
* :mod:`repro.allocation` — workload allocation: simple weighted and the
  optimized closed form (Algorithm 1), plus a scipy cross-check.
* :mod:`repro.dispatch` — job dispatching: random, generalized round
  robin (Algorithm 2), dynamic least load, SITA extension.
* :mod:`repro.sim` — discrete-event simulator (PS/FCFS/quantum servers,
  feedback delays) and the vectorized static-policy fast path.
* :mod:`repro.queueing` — M/M/1, M/G/1, G/G/1 theory and the paper's
  objective function.
* :mod:`repro.distributions` — Bounded Pareto sizes, hyperexponential
  arrivals, and supporting families.
* :mod:`repro.metrics` — response time/ratio, fairness, deviation,
  replication confidence intervals.
* :mod:`repro.experiments` — one runner per table/figure of the paper.
"""

from .allocation import (
    AllocationResult,
    Allocator,
    MisestimatedOptimizedAllocator,
    NumericAllocator,
    OptimizedAllocator,
    WeightedAllocator,
    optimized_fractions,
)
from .core import (
    PAPER_POLICIES,
    AdaptiveOrrDispatcher,
    PolicyEvaluation,
    SchedulingPolicy,
    evaluate_policy,
    evaluate_policy_parallel,
    evaluate_policy_to_precision,
    get_policy,
    policy_names,
    run_policy_once,
)
from .dispatch import (
    Dispatcher,
    LeastLoadDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
)
from .distributions import BoundedPareto, Hyperexponential, paper_job_sizes
from .metrics import MetricsCollector, ResponseMetrics, summarize_replications
from .queueing import HeterogeneousNetwork, objective_value, theoretical_minimum
from .sim import (
    FeedbackModel,
    JobTrace,
    QueueSampler,
    SimulationConfig,
    SimulationResults,
    run_simulation,
    run_static_simulation,
    run_trace_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "SchedulingPolicy",
    "get_policy",
    "policy_names",
    "PAPER_POLICIES",
    "PolicyEvaluation",
    "evaluate_policy",
    "evaluate_policy_parallel",
    "evaluate_policy_to_precision",
    "run_policy_once",
    "AdaptiveOrrDispatcher",
    # allocation
    "Allocator",
    "AllocationResult",
    "WeightedAllocator",
    "OptimizedAllocator",
    "NumericAllocator",
    "MisestimatedOptimizedAllocator",
    "optimized_fractions",
    # dispatch
    "Dispatcher",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "LeastLoadDispatcher",
    # sim
    "SimulationConfig",
    "SimulationResults",
    "run_simulation",
    "run_static_simulation",
    "run_trace_simulation",
    "FeedbackModel",
    "JobTrace",
    "QueueSampler",
    # queueing
    "HeterogeneousNetwork",
    "objective_value",
    "theoretical_minimum",
    # distributions
    "BoundedPareto",
    "Hyperexponential",
    "paper_job_sizes",
    # metrics
    "MetricsCollector",
    "ResponseMetrics",
    "summarize_replications",
]
