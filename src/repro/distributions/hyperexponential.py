"""Two-stage hyperexponential (H2) distribution.

The paper models the job arrival process with a two-stage hyperexponential
distribution fitted so the inter-arrival coefficient of variation is 3.0
(Section 4.1), motivated by Zhou's trace measurement of CV = 2.64.

A two-stage hyperexponential mixes two exponentials: with probability
``p1`` draw Exp(rate1), else Exp(rate2).  Any (mean, CV ≥ 1) pair can be
matched; we use the standard *balanced means* fit (p1/rate1 = p2/rate2),
which uniquely determines the three H2 parameters from two moments.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Distribution, validate_probability

__all__ = ["Hyperexponential", "fit_h2_balanced_means"]


def fit_h2_balanced_means(mean: float, cv: float) -> tuple[float, float, float]:
    """Fit H2 parameters ``(p1, rate1, rate2)`` to a target mean and CV.

    Uses the balanced-means condition ``p1/rate1 == p2/rate2`` (each branch
    contributes half of the mean), giving

    .. math::  p_1 = \\tfrac12\\bigl(1 + \\sqrt{(c^2-1)/(c^2+1)}\\bigr),
               \\quad \\lambda_1 = 2 p_1/m, \\quad \\lambda_2 = 2 p_2/m.

    Requires ``cv >= 1``; at ``cv == 1`` the fit degenerates to a plain
    exponential (both rates equal).
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if cv < 1.0:
        raise ValueError(
            f"a hyperexponential cannot have cv < 1 (got {cv}); use Erlang for cv < 1"
        )
    c2 = cv * cv
    p1 = 0.5 * (1.0 + math.sqrt((c2 - 1.0) / (c2 + 1.0)))
    p2 = 1.0 - p1
    rate1 = 2.0 * p1 / mean
    rate2 = 2.0 * p2 / mean
    return p1, rate1, rate2


class Hyperexponential(Distribution):
    """H2 mixture: Exp(rate1) w.p. p1, Exp(rate2) w.p. 1 − p1."""

    def __init__(self, p1: float, rate1: float, rate2: float):
        validate_probability(p1, "p1")
        if rate1 <= 0 or rate2 <= 0:
            raise ValueError(f"rates must be positive, got {rate1}, {rate2}")
        self.p1 = float(p1)
        self.p2 = 1.0 - self.p1
        self.rate1 = float(rate1)
        self.rate2 = float(rate2)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "Hyperexponential":
        """Balanced-means fit to a target mean and CV (see module docs)."""
        p1, rate1, rate2 = fit_h2_balanced_means(mean, cv)
        return cls(p1, rate1, rate2)

    @property
    def mean(self) -> float:
        return self.p1 / self.rate1 + self.p2 / self.rate2

    @property
    def second_moment(self) -> float:
        return 2.0 * (self.p1 / self.rate1**2 + self.p2 / self.rate2**2)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(
            x < 0,
            0.0,
            -(self.p1 * np.expm1(-self.rate1 * x) + self.p2 * np.expm1(-self.rate2 * x)),
        )
        return out if out.ndim else float(out)

    def ppf(self, q):
        """Numerical inverse of the mixture CDF (vectorized bisection).

        The mixture CDF has no closed-form inverse; 60 bisection steps give
        ~1e-18 relative bracketing error, far below sampling noise.
        """
        q = np.asarray(q, dtype=float)
        scalar = q.ndim == 0
        q = np.atleast_1d(q)
        if np.any((q < 0) | (q >= 1)):
            raise ValueError("ppf requires 0 <= q < 1")
        lo = np.zeros_like(q)
        # Upper bracket from the slower branch: 1 - F(x) <= exp(-min_rate x).
        min_rate = min(self.rate1, self.rate2)
        with np.errstate(divide="ignore"):
            hi = np.where(q > 0, -np.log1p(-q) / min_rate, 0.0)
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            below = self.cdf(mid) < q
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
        out = 0.5 * (lo + hi)
        return float(out[0]) if scalar else out

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw via branch selection — exact and much faster than ``ppf``."""
        n = 1 if size is None else int(size)
        branch = rng.random(n) < self.p1
        rates = np.where(branch, self.rate1, self.rate2)
        out = rng.exponential(1.0, n) / rates
        return float(out[0]) if size is None else out
