"""Exponential and related memoryless-family distributions."""

from __future__ import annotations

import math

import numpy as np

from .base import Distribution

__all__ = ["Exponential", "Erlang", "Deterministic", "Uniform"]


class Exponential(Distribution):
    """Exponential distribution with the given *rate* (mean = 1/rate).

    This is the M in M/M/1: Poisson arrivals have exponential
    inter-arrival times with CV = 1.
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return cls(1.0 / mean)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def second_moment(self) -> float:
        return 2.0 / self.rate**2

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        out = -np.log1p(-q) / self.rate
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x < 0, 0.0, -np.expm1(-self.rate * x))
        return out if out.ndim else float(out)


class Erlang(Distribution):
    """Erlang-k distribution (sum of k exponentials), CV = 1/sqrt(k) < 1.

    Useful as a *smoother-than-Poisson* arrival model in the burstiness
    (CV) ablation sweeps.
    """

    def __init__(self, k: int, rate: float):
        if k < 1:
            raise ValueError(f"k must be a positive integer, got {k}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.k = int(k)
        self.rate = float(rate)

    @classmethod
    def from_mean_k(cls, mean: float, k: int) -> "Erlang":
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return cls(k, k / mean)

    @property
    def mean(self) -> float:
        return self.k / self.rate

    @property
    def second_moment(self) -> float:
        # E[X²] = k(k+1)/rate²
        return self.k * (self.k + 1) / self.rate**2

    def ppf(self, q):
        from scipy import stats

        q = np.asarray(q, dtype=float)
        out = stats.gamma.ppf(q, a=self.k, scale=1.0 / self.rate)
        return out if out.ndim else float(out)

    def cdf(self, x):
        from scipy import stats

        x = np.asarray(x, dtype=float)
        out = stats.gamma.cdf(x, a=self.k, scale=1.0 / self.rate)
        return out if out.ndim else float(out)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        # Direct gamma sampling is much faster than the ppf path.
        return rng.gamma(shape=self.k, scale=1.0 / self.rate, size=size)


class Deterministic(Distribution):
    """Point mass at *value* (CV = 0); the D in D/M/1-style ablations."""

    def __init__(self, value: float):
        if value <= 0:
            raise ValueError(f"value must be positive, got {value}")
        self.value = float(value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def second_moment(self) -> float:
        return self.value**2

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        out = np.full_like(q, self.value)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = (x >= self.value).astype(float)
        return out if out.ndim else float(out)


class Uniform(Distribution):
    """Uniform distribution on [lo, hi]; used for the 1-second load-index
    polling delay of the Dynamic Least-Load feedback path (U(0,1))."""

    def __init__(self, lo: float, hi: float):
        if not lo < hi:
            raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
        if lo < 0:
            raise ValueError("Uniform support must be non-negative for delays")
        self.lo = float(lo)
        self.hi = float(hi)

    @property
    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def second_moment(self) -> float:
        # E[X²] over [a,b] = (a² + ab + b²)/3
        a, b = self.lo, self.hi
        return (a * a + a * b + b * b) / 3.0

    @property
    def std(self) -> float:
        return (self.hi - self.lo) / math.sqrt(12.0)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        out = self.lo + q * (self.hi - self.lo)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.clip((x - self.lo) / (self.hi - self.lo), 0.0, 1.0)
        return out if out.ndim else float(out)
