"""Workload distributions used by the paper's simulation model.

* :class:`BoundedPareto` — heavy-tailed job sizes (Section 4.1 defaults
  k=10 s, p=21600 s, alpha=1.0, mean ≈ 76.8 s).
* :class:`Hyperexponential` — bursty inter-arrival times (CV = 3.0 in the
  paper), balanced-means moment fit.
* :class:`Exponential`, :class:`Erlang`, :class:`Deterministic`,
  :class:`Uniform` — supporting families for baselines, ablations, and the
  Dynamic Least-Load feedback delays.
"""

from .base import Distribution, Scaled
from .bounded_pareto import (
    PAPER_ALPHA,
    PAPER_K,
    PAPER_P,
    BoundedPareto,
    paper_job_sizes,
)
from .exponential import Deterministic, Erlang, Exponential, Uniform
from .fitting import check_cv_achievable, distribution_from_mean_cv
from .heavy import Lognormal, Weibull
from .hyperexponential import Hyperexponential, fit_h2_balanced_means

__all__ = [
    "Distribution",
    "Scaled",
    "BoundedPareto",
    "paper_job_sizes",
    "PAPER_K",
    "PAPER_P",
    "PAPER_ALPHA",
    "Exponential",
    "Erlang",
    "Deterministic",
    "Uniform",
    "Hyperexponential",
    "Lognormal",
    "Weibull",
    "fit_h2_balanced_means",
    "distribution_from_mean_cv",
    "check_cv_achievable",
]
