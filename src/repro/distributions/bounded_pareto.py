"""Bounded Pareto job-size distribution B(k, p, alpha).

The paper (Section 4.1, following Harchol-Balter et al.) uses the Bounded
Pareto with density

.. math::  f(x) = \\frac{\\alpha k^\\alpha}{1 - (k/p)^\\alpha} x^{-\\alpha-1},
           \\qquad k \\le x \\le p,

with defaults ``k = 10`` s, ``p = 21600`` s, ``alpha = 1.0`` — a
heavy-tailed job-size model whose mean is 76.8 s: a small number of very
large jobs carries a significant fraction of the total load.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Distribution

__all__ = ["BoundedPareto", "PAPER_K", "PAPER_P", "PAPER_ALPHA", "paper_job_sizes"]

#: Default parameters from Section 4.1 of the paper.
PAPER_K = 10.0
PAPER_P = 21600.0
PAPER_ALPHA = 1.0


class BoundedPareto(Distribution):
    """Bounded Pareto distribution B(k, p, alpha) on [k, p]."""

    def __init__(self, k: float = PAPER_K, p: float = PAPER_P, alpha: float = PAPER_ALPHA):
        if not 0 < k < p:
            raise ValueError(f"need 0 < k < p, got k={k}, p={p}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.k = float(k)
        self.p = float(p)
        self.alpha = float(alpha)
        # Normalization constant 1 − (k/p)^alpha used by cdf/ppf/moments.
        self._norm = 1.0 - (self.k / self.p) ** self.alpha

    def moment(self, j: float) -> float:
        """E[X^j] in closed form (handles the j == alpha log case)."""
        a, k, p = self.alpha, self.k, self.p
        coeff = a * k**a / self._norm
        if math.isclose(j, a, rel_tol=1e-12):
            return coeff * math.log(p / k)
        return coeff * (p ** (j - a) - k ** (j - a)) / (j - a)

    @property
    def mean(self) -> float:
        return self.moment(1.0)

    @property
    def second_moment(self) -> float:
        return self.moment(2.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (1.0 - (self.k / np.clip(x, self.k, self.p)) ** self.alpha) / self._norm
        out = np.where(x < self.k, 0.0, np.where(x > self.p, 1.0, inside))
        return out if out.ndim else float(out)

    def ppf(self, q):
        """Inverse CDF:  x = k (1 − q·norm)^{−1/alpha}."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("ppf requires 0 <= q <= 1")
        out = self.k * (1.0 - q * self._norm) ** (-1.0 / self.alpha)
        # Guard against FP drift past the upper bound at q == 1.
        out = np.minimum(out, self.p)
        return out if out.ndim else float(out)

    def load_share_above(self, x: float) -> float:
        """Fraction of total *work* carried by jobs of size > x.

        Quantifies the heavy-tail property the paper cites: a handful of
        huge jobs dominates the load.  E[X · 1(X > x)] / E[X].
        """
        if x <= self.k:
            return 1.0
        if x >= self.p:
            return 0.0
        a, k, p = self.alpha, self.k, self.p
        coeff = a * k**a / self._norm
        if math.isclose(a, 1.0, rel_tol=1e-12):
            partial = coeff * math.log(p / x)
        else:
            partial = coeff * (p ** (1.0 - a) - x ** (1.0 - a)) / (1.0 - a)
        return partial / self.mean


def paper_job_sizes() -> BoundedPareto:
    """The exact job-size distribution of Section 4.1 (mean ≈ 76.8 s)."""
    return BoundedPareto(PAPER_K, PAPER_P, PAPER_ALPHA)
