"""Distribution protocol shared by all workload distributions.

Every distribution exposes

* exact first/second moments (``mean``, ``variance``, ``cv`` — the
  coefficient of variation σ/μ used throughout the paper),
* vectorized sampling through a :class:`numpy.random.Generator`, and
* the CDF/inverse CDF where they exist in closed form (all the
  distributions used here are sampled by inverse transform, which keeps a
  single uniform stream per component and makes common-random-number
  comparisons exact).
"""

from __future__ import annotations

import abc
import math

import numpy as np

__all__ = ["Distribution", "validate_probability"]


def validate_probability(p: float, name: str = "p") -> float:
    """Check that *p* lies in [0, 1] and return it."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {p}")
    return float(p)


class Distribution(abc.ABC):
    """A positive continuous distribution with closed-form moments."""

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """First moment E[X]."""

    @property
    @abc.abstractmethod
    def second_moment(self) -> float:
        """Second moment E[X²]."""

    @property
    def variance(self) -> float:
        """Var[X] = E[X²] − E[X]²  (clamped at 0 against rounding)."""
        return max(self.second_moment - self.mean**2, 0.0)

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance)

    @property
    def cv(self) -> float:
        """Coefficient of variation σ/μ (the paper's burstiness measure)."""
        if self.mean == 0.0:
            raise ZeroDivisionError("cv undefined for zero-mean distribution")
        return self.std / self.mean

    @property
    def scv(self) -> float:
        """Squared coefficient of variation, used by G/G/1 approximations."""
        return self.cv**2

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def ppf(self, q: np.ndarray | float) -> np.ndarray | float:
        """Inverse CDF (percent-point function)."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Cumulative distribution function."""

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        """Draw samples by inverse transform of ``rng.random``."""
        u = rng.random(size)
        return self.ppf(u)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def scaled(self, factor: float) -> "Scaled":
        """Return this distribution scaled by a positive *factor*."""
        return Scaled(self, factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mean={self.mean:.6g}, cv={self.cv:.6g})"


class Scaled(Distribution):
    """``factor * X`` for an underlying distribution X (same CV)."""

    def __init__(self, inner: Distribution, factor: float):
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        self.inner = inner
        self.factor = float(factor)

    @property
    def mean(self) -> float:
        return self.factor * self.inner.mean

    @property
    def second_moment(self) -> float:
        return self.factor**2 * self.inner.second_moment

    def ppf(self, q):
        return self.factor * self.inner.ppf(q)

    def cdf(self, x):
        return self.inner.cdf(np.asarray(x) / self.factor)
