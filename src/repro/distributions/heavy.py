"""Additional job-size families: Lognormal and Weibull.

The paper uses the Bounded Pareto; these two appear throughout the
task-size literature (web object sizes are near-lognormal, UNIX process
lifetimes are Weibull/Pareto-ish) and feed the size-distribution
ablation: under processor sharing the *mean* response ratio is
insensitive to the size distribution (only E[S] matters), while FCFS
degrades with the tail weight — the reason the paper models PS CPUs.

Both support exact moment-matching construction from (mean, cv).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize, special, stats

from .base import Distribution

__all__ = ["Lognormal", "Weibull"]


class Lognormal(Distribution):
    """Lognormal(μ, σ): log X ~ Normal(μ, σ²)."""

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "Lognormal":
        """Exact moment fit: σ² = ln(1 + cv²), μ = ln(mean) − σ²/2."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv <= 0:
            raise ValueError(f"cv must be positive, got {cv}")
        sigma2 = math.log1p(cv * cv)
        return cls(mu=math.log(mean) - sigma2 / 2.0, sigma=math.sqrt(sigma2))

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    @property
    def second_moment(self) -> float:
        return math.exp(2.0 * self.mu + 2.0 * self.sigma**2)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(
            x <= 0,
            0.0,
            stats.norm.cdf((np.log(np.maximum(x, 1e-300)) - self.mu) / self.sigma),
        )
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        out = np.exp(self.mu + self.sigma * stats.norm.ppf(q))
        return out if out.ndim else float(out)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(self.mu, self.sigma, size)


class Weibull(Distribution):
    """Weibull(shape k, scale λ): F(x) = 1 − exp(−(x/λ)^k).

    Shape < 1 gives a heavy (sub-exponential) tail with cv > 1;
    shape > 1 is lighter than exponential.
    """

    def __init__(self, shape: float, scale: float):
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float, *, tol: float = 1e-12) -> "Weibull":
        """Moment fit: solve Γ(1+2/k)/Γ(1+1/k)² = 1 + cv² for the shape,
        then pick the scale to hit the mean.  Uses a bracketing root
        search on log-gamma (robust for 0.05 ≤ cv-implied shapes)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv <= 0:
            raise ValueError(f"cv must be positive, got {cv}")
        target = math.log1p(cv * cv)

        def gap(k: float) -> float:
            return (
                special.gammaln(1.0 + 2.0 / k)
                - 2.0 * special.gammaln(1.0 + 1.0 / k)
                - target
            )

        # cv is decreasing in k: bracket accordingly.
        lo, hi = 1e-2, 1e2
        if gap(lo) < 0 or gap(hi) > 0:
            raise ValueError(f"cv={cv} outside the representable Weibull range")
        k = optimize.brentq(gap, lo, hi, xtol=tol)
        scale = mean / math.gamma(1.0 + 1.0 / k)
        return cls(shape=k, scale=scale)

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def second_moment(self) -> float:
        return self.scale**2 * math.gamma(1.0 + 2.0 / self.shape)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(
            x < 0, 0.0, -np.expm1(-np.power(np.maximum(x, 0.0) / self.scale, self.shape))
        )
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        out = self.scale * np.power(-np.log1p(-q), 1.0 / self.shape)
        return out if out.ndim else float(out)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.scale * rng.weibull(self.shape, size)
