"""Moment-matching helpers for building arrival/size processes.

The experiment sweeps (especially the burstiness ablation) need an
inter-arrival distribution with an arbitrary target CV.  No single family
covers the whole range, so :func:`distribution_from_mean_cv` selects:

* ``cv == 0``      → :class:`Deterministic`
* ``0 < cv < 1``   → :class:`Erlang`-k with k = ceil(1/cv²), rate adjusted
  by a two-point mixture is overkill here: we pick the Erlang whose CV is
  closest from below and report the achieved CV, which is exact whenever
  1/cv² is an integer (the values used by the sweeps).
* ``cv == 1``      → :class:`Exponential`
* ``cv > 1``       → balanced-means :class:`Hyperexponential`
"""

from __future__ import annotations

import math

from .base import Distribution
from .exponential import Deterministic, Erlang, Exponential
from .hyperexponential import Hyperexponential

__all__ = ["distribution_from_mean_cv"]

_CV_TOL = 1e-9


def distribution_from_mean_cv(mean: float, cv: float) -> Distribution:
    """Return a distribution matching *mean* exactly and *cv* as described.

    For ``cv < 1`` the CV match is exact only when ``1/cv²`` is an integer
    (e.g. cv = 0.5 → Erlang-4); otherwise the nearest Erlang order is used
    and the caller can read the achieved CV off the returned object.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    if cv < _CV_TOL:
        return Deterministic(mean)
    if abs(cv - 1.0) < _CV_TOL:
        return Exponential.from_mean(mean)
    if cv > 1.0:
        return Hyperexponential.from_mean_cv(mean, cv)
    k = max(1, round(1.0 / (cv * cv)))
    return Erlang.from_mean_k(mean, k)


def check_cv_achievable(cv: float) -> bool:
    """True when :func:`distribution_from_mean_cv` matches *cv* exactly."""
    if cv < 0:
        return False
    if cv < _CV_TOL or cv >= 1.0 - _CV_TOL:
        return True
    inv = 1.0 / (cv * cv)
    return math.isclose(inv, round(inv), rel_tol=0, abs_tol=1e-9)
