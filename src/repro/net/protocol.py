"""Versioned wire protocol of the networked dispatcher service.

Seven message types flow between the three components (see DESIGN.md
§11): a server stub announces itself with a REGISTER (on first connect
and again when a restarted stub rejoins), the load client SUBMITs one
control window of arrivals to an orchestrator shard, the shard
DISPATCHes per-server slices to its server stubs, each stub answers
with a COMPLETE (departure and service times) plus a HEARTBEAT, and the
shard closes the window with a RESOLVE back to the client — which
doubles as the client's flow-control credit and publishes the shard's
live capacity for the client's weighted router.  SHUTDOWN tears a
connection down cleanly in either direction.

The encoding is JSON (floats round-trip exactly through ``repr``, so
the live-socket mode stays bit-comparable to the in-process mode) in
length-prefixed frames: a 4-byte big-endian payload length followed by
the UTF-8 JSON object.  Every object carries ``{"v": .., "type": ..}``;
decoding tolerates unknown fields (forward compatibility: a newer peer
may add fields) but rejects a different major version loudly — silent
cross-version traffic is how heterogeneous fleets corrupt estimator
state.

The codec is sans-IO: :func:`encode` / :func:`decode` map messages to
and from plain dicts, :func:`pack` / :func:`unpack` add the frame
bytes, and only :func:`read_message` / :func:`write_message` touch
asyncio streams.  The in-process transport round-trips every message
through ``unpack(pack(msg))`` so simulation mode exercises the exact
codec the sockets use.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from dataclasses import dataclass
from typing import Any, ClassVar

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "VersionMismatch",
    "Register",
    "Submit",
    "Dispatch",
    "Complete",
    "Heartbeat",
    "Resolve",
    "Shutdown",
    "Message",
    "encode",
    "decode",
    "pack",
    "unpack",
    "read_message",
    "write_message",
]

#: Bump on any incompatible schema change; peers reject a mismatch.
#: v2 added the REGISTER message (server rejoin) and the RESOLVE
#: ``capacity`` field (capacity-aware shard routing).
PROTOCOL_VERSION = 2

#: Upper bound on one frame's payload — a length prefix beyond this is
#: treated as stream corruption, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(ValueError):
    """Malformed frame or message (bad type, missing field, bad JSON)."""


class VersionMismatch(ProtocolError):
    """Peer speaks a different protocol version — refuse, don't guess."""


@dataclass(frozen=True)
class Register:
    """Server stub → orchestrator: hello / re-registration.

    Sent as the first message on every stub connection.  ``window`` is
    the first window the stub is live for — 0 on the initial connect; a
    restarted stub announces the window it rejoins at, and the
    orchestrator folds it back into membership at that window boundary
    (deterministic on both transports regardless of socket timing).
    ``incarnation`` counts restarts so a rejoin is distinguishable from
    a duplicate hello; ``speed`` is the stub's nominal speed, which the
    orchestrator validates against its config — a drifted speed vector
    between components would silently corrupt the solver.
    """

    type: ClassVar[str] = "register"
    server: int
    speed: float
    window: int = 0
    incarnation: int = 0


@dataclass(frozen=True)
class Submit:
    """Client → orchestrator: one control window of offered arrivals.

    ``times``/``sizes`` are the window's arrival stream in arrival
    order; ``final`` marks the last window of the run so the shard can
    finalize its report after resolving it.
    """

    type: ClassVar[str] = "submit"
    window: int
    times: tuple[float, ...]
    sizes: tuple[float, ...]
    final: bool = False


@dataclass(frozen=True)
class Dispatch:
    """Orchestrator → server stub: this window's slice for one server."""

    type: ClassVar[str] = "dispatch"
    window: int
    server: int
    times: tuple[float, ...]
    sizes: tuple[float, ...]


@dataclass(frozen=True)
class Complete:
    """Server stub → orchestrator: replayed departures for one slice.

    Arrays align with the Dispatch slice (per-server FCFS order).
    """

    type: ClassVar[str] = "complete"
    window: int
    server: int
    departures: tuple[float, ...]
    service_times: tuple[float, ...]


@dataclass(frozen=True)
class Heartbeat:
    """Server stub → orchestrator: liveness beacon.

    ``window`` is the last window the stub finished replaying; the
    registration beacon sent on connect uses ``window = -1``.
    ``free_at`` reports the server's backlog horizon — telemetry only,
    never fed to the estimators.
    """

    type: ClassVar[str] = "heartbeat"
    server: int
    window: int = -1
    free_at: float = 0.0


@dataclass(frozen=True)
class Resolve:
    """Orchestrator → client: window closed, control decision applied.

    Acknowledges the window (returning one flow-control credit to the
    client) and reports the boundary decision for observability.
    ``capacity`` publishes the shard's live capacity — the sum of
    nominal speeds of its currently-up servers — which the client's
    capacity-aware router folds into its shard weights; it moves only
    on membership edges.
    """

    type: ClassVar[str] = "resolve"
    window: int
    alphas: tuple[float, ...]
    swapped: bool
    reason: str
    offered: int
    admitted: int
    shed: int
    lost: int = 0
    final: bool = False
    capacity: float = 0.0


@dataclass(frozen=True)
class Shutdown:
    """Either direction: close this connection after processing."""

    type: ClassVar[str] = "shutdown"
    reason: str = ""


Message = (
    Register | Submit | Dispatch | Complete | Heartbeat | Resolve | Shutdown
)

_TYPES: dict[str, type] = {
    cls.type: cls
    for cls in (
        Register, Submit, Dispatch, Complete, Heartbeat, Resolve, Shutdown
    )
}

#: Fields that carry float sequences — normalized to tuples on decode
#: so dataclass equality (and hypothesis round-trip tests) are exact.
_SEQ_FIELDS = frozenset(
    {"times", "sizes", "departures", "service_times", "alphas"}
)


def encode(msg: Message) -> dict:
    """Message → versioned plain dict (JSON-ready)."""
    payload: dict[str, Any] = {"v": PROTOCOL_VERSION, "type": msg.type}
    for f in dataclasses.fields(msg):
        value = getattr(msg, f.name)
        payload[f.name] = list(value) if f.name in _SEQ_FIELDS else value
    return payload


def decode(obj: Any) -> Message:
    """Versioned dict → message; tolerant of unknown fields.

    Raises :class:`VersionMismatch` on a foreign protocol version and
    :class:`ProtocolError` on anything else malformed, naming what was
    missing or unknown.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(obj).__name__}")
    version = obj.get("v")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"peer speaks protocol version {version!r}; this build speaks "
            f"{PROTOCOL_VERSION} — upgrade one side, mixed versions are refused"
        )
    kind = obj.get("type")
    cls = _TYPES.get(kind)
    if cls is None:
        raise ProtocolError(
            f"unknown message type {kind!r}; known types: "
            f"{', '.join(sorted(_TYPES))}"
        )
    kwargs: dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name in obj:
            value = obj[f.name]
            kwargs[f.name] = (
                tuple(float(x) for x in value)
                if f.name in _SEQ_FIELDS
                else value
            )
        elif f.default is dataclasses.MISSING:
            raise ProtocolError(
                f"{kind} message missing required field {f.name!r}"
            )
    try:
        return cls(**kwargs)
    except TypeError as exc:  # e.g. a non-sequence where a list belongs
        raise ProtocolError(f"malformed {kind} message: {exc}") from exc


def pack(msg: Message) -> bytes:
    """Message → one length-prefixed wire frame."""
    body = json.dumps(encode(msg), separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to pack {msg.type!r} message: frame of "
            f"{len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _LEN.pack(len(body)) + body


def unpack(frame: bytes) -> Message:
    """One complete wire frame → message (inverse of :func:`pack`)."""
    if len(frame) < _LEN.size:
        raise ProtocolError(f"truncated frame: {len(frame)} bytes")
    (length,) = _LEN.unpack_from(frame)
    body = frame[_LEN.size:]
    if len(body) != length:
        raise ProtocolError(
            f"frame length prefix says {length} bytes, got {len(body)}"
        )
    return _decode_body(bytes(body))


def _decode_body(body: bytes) -> Message:
    try:
        obj = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    return decode(obj)


async def read_message(reader) -> Message | None:
    """Read one framed message from an asyncio stream reader.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`ProtocolError` on EOF mid-frame or a corrupt length prefix.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} header bytes)"
        ) from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        # The type is undecodable before the payload is read, so the
        # refusal names everything the header gives us: the offending
        # length and the cap it breached.
        raise ProtocolError(
            f"refusing frame: length prefix {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap (stream corrupt or hostile peer)"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return _decode_body(body)


def write_message(writer, msg: Message) -> None:
    """Queue one framed message on an asyncio stream writer.

    The caller decides when to ``await writer.drain()`` — batching the
    drain per window keeps the dispatch fan-out at one syscall burst.
    """
    writer.write(pack(msg))
