"""Orchestrator shard: Algorithm 2 dispatch over a message boundary.

One shard owns a subset of the server pool and runs exactly the brain
of :class:`~repro.service.loop.SchedulerService` — online estimators,
admission gate, memoized Algorithm 2 sequence, quasi-static re-solve —
with the window *replay* moved behind DISPATCH/COMPLETE messages to
server stubs.  The shard is sans-IO: handlers map one inbound message
to outbound messages, and both transports (deterministic in-process
loop, asyncio sockets) drive the same code.

**Equivalence contract.**  For a fault-free run the shard reproduces
``SchedulerService._run_window`` float-op for float-op:

* SUBMIT processing runs ``observe_arrivals → admit_mask →
  select_batch`` and partitions admitted jobs with the same stable
  argsort + searchsorted the grouped replay uses;
* each stub replays its slice with the identical per-server Lindley
  recursion (:func:`~repro.service.replay.lindley_window`);
* COMPLETE replies are folded in server-index order behind a per-window
  barrier: per-server witness slices concatenated in server order equal
  the in-process ``wit[order]`` bit-for-bit (elementwise division
  commutes with the permutation), and departures are scattered back to
  arrival order before the response means — numpy's pairwise summation
  makes the reduction order part of the contract;
* ``resolve(end)`` runs only after the barrier, exactly once per
  window, so estimator state at every boundary matches the serial loop.

Windows are processed strictly in order, one at a time — SUBMITs queue
in the transport while a window is in flight (that queue, plus the
client's credit window, is the backpressure story).  The dispatch
*decision* stays O(jobs) vectorized work per window; its wall-clock
cost is tracked per window in ``decision_latency`` and surfaced by
``repro bench --net`` as ``dispatch_ns_per_job``.

**Membership.**  A dead stub is detected by connection EOF (primary)
or heartbeat staleness (fallback); its pending slice is counted lost
(``on_failure="lose"`` semantics — the networked layer has no retry
path yet), the controller's failure detector is informed, and the next
boundary re-solve redistributes over the survivors via FA_ORR.  The
repair mirror: a restarted stub reconnects and sends a REGISTER naming
its rejoin window; the shard parks it (*registering*) and folds it back
into membership when that window's SUBMIT arrives — deferring to the
window boundary makes the rejoin land identically on both transports
regardless of when the REGISTER raced in.  Folding in runs
``mark_server_up`` with fresh estimates (*warming*: the server's speed
EWMA is reset so it re-enters at its nominal speed rather than a stale
pre-crash estimate), which dirties membership and forces the
out-of-band re-solve back to the full-bank optimum at the same
boundary.  Every RESOLVE publishes the shard's live capacity (sum of
nominal speeds of its up servers) for the client's capacity-aware
router, so both membership edges — kill and rejoin — reshape the
cross-shard split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..dispatch.round_robin import SequenceRoundRobin
from ..metrics.online import LatencyStats
from ..obs import counters
from ..service.controller import AdmissionGate, ControlDecision
from ..service.loop import ServiceConfig, ServiceReport, WindowRecord, build_controller
from .protocol import (
    Complete,
    Dispatch,
    Heartbeat,
    Register,
    Resolve,
    Submit,
)

__all__ = ["OrchestratorShard", "shard_config"]


def shard_config(config: ServiceConfig, shard: int, n_shards: int) -> ServiceConfig:
    """The per-shard config: servers partitioned round-robin.

    Shard ``s`` of ``S`` owns global servers ``s, s+S, s+2S, ...`` —
    local index ``i`` is global ``s + i*S``.  Every other knob is
    inherited unchanged.
    """
    import dataclasses

    if not 0 <= shard < n_shards:
        raise ValueError(f"shard {shard} out of range for {n_shards} shards")
    speeds = tuple(config.speeds[shard::n_shards])
    if not speeds:
        raise ValueError(
            f"shard {shard} of {n_shards} owns no servers "
            f"(pool has {len(config.speeds)})"
        )
    return dataclasses.replace(config, speeds=speeds)


@dataclass
class _WindowState:
    """One in-flight window awaiting its COMPLETE barrier."""

    window: int
    start: float
    end: float
    offered: int
    shed: int
    adm_times: np.ndarray
    adm_sizes: np.ndarray
    order: np.ndarray
    bounds: np.ndarray
    final: bool
    expected: set[int] = field(default_factory=set)
    replies: dict[int, Complete] = field(default_factory=dict)
    lost: int = 0


class OrchestratorShard:
    """Sans-IO dispatch brain for one shard of the pool."""

    def __init__(self, config: ServiceConfig, *, shard_id: int = 0):
        self.config = config
        self.shard_id = int(shard_id)
        self.n = len(config.speeds)
        self.controller = build_controller(config)
        self.gate = AdmissionGate()
        self.dispatcher = SequenceRoundRobin()
        self.dispatcher.reset(self.controller.alphas)
        self.report = ServiceReport(config=config)
        self.up = np.ones(self.n, dtype=bool)
        self.decisions: list[ControlDecision] = []
        self.decision_latency = LatencyStats()
        self.last_heartbeat: dict[int, float] = {}
        self.windows_done = 0
        self.finished = False
        self._pending: _WindowState | None = None
        #: Parked rejoins: server → its REGISTER, applied at the
        #: boundary of the window the registration names.
        self._rejoins: dict[int, Register] = {}

    @property
    def busy(self) -> bool:
        """Whether a window is in flight (awaiting its barrier)."""
        return self._pending is not None

    @property
    def awaiting(self) -> set[int]:
        """Servers whose COMPLETE the in-flight window still awaits."""
        return set(self._pending.expected) if self._pending else set()

    # ------------------------------------------------------------------
    # Inbound handlers
    # ------------------------------------------------------------------

    def handle_submit(
        self, msg: Submit
    ) -> tuple[list[Dispatch], Resolve | None]:
        """Open window *msg.window*: decide placements, cut dispatches.

        Returns the per-server DISPATCH fan-out and — for a window with
        no live targets — the immediate RESOLVE.  Exactly the decision
        plane of ``SchedulerService._run_window`` up to the replay call.
        """
        if self._pending is not None:
            raise RuntimeError(
                f"window {self._pending.window} still in flight; the "
                "transport must serialize submits"
            )
        if self.finished:
            raise RuntimeError("shard already finalized")
        k = msg.window
        if self._rejoins:
            self._apply_rejoins(k)
        cp = self.config.control_period
        start = k * cp
        end = min((k + 1) * cp, self.config.duration)
        times = np.asarray(msg.times, dtype=float)
        sizes = np.asarray(msg.sizes, dtype=float)

        t0 = time.perf_counter()
        controller = self.controller
        controller.observe_arrivals(times, sizes)
        keep = 1.0 - controller.shed_fraction
        mask = self.gate.admit_mask(times.size, keep)
        if mask.all():
            adm_times = times
            adm_sizes = sizes
        else:
            adm_times = times[mask]
            adm_sizes = sizes[mask]
        targets = self.dispatcher.select_batch(adm_sizes)
        # Same stable group-by-server partition as the grouped replay.
        order = np.argsort(targets, kind="stable")
        sorted_targets = targets[order]
        bounds = np.searchsorted(sorted_targets, np.arange(self.n + 1))
        self.decision_latency.observe(
            time.perf_counter() - t0, jobs=int(adm_times.size)
        )

        shed = int(times.size - adm_times.size)
        counters.inc("service.jobs_dispatched", value=int(adm_times.size))
        if shed:
            counters.inc("service.jobs_shed", value=shed)

        state = _WindowState(
            window=k,
            start=start,
            end=end,
            offered=int(times.size),
            shed=shed,
            adm_times=adm_times,
            adm_sizes=adm_sizes,
            order=order,
            bounds=bounds,
            final=msg.final,
        )
        dispatches: list[Dispatch] = []
        for i in range(self.n):
            idx = order[bounds[i]:bounds[i + 1]]
            if idx.size == 0:
                continue
            if not self.up[i]:
                state.lost += int(idx.size)
                continue
            state.expected.add(i)
            dispatches.append(
                Dispatch(
                    window=k,
                    server=i,
                    times=tuple(adm_times[idx].tolist()),
                    sizes=tuple(adm_sizes[idx].tolist()),
                )
            )
        self._pending = state
        resolve = None
        if not state.expected:
            resolve = self._finalize_window()
        return dispatches, resolve

    def handle_complete(self, msg: Complete) -> Resolve | None:
        """Bank one stub's reply; close the window when all are in."""
        state = self._pending
        if state is None or msg.window != state.window:
            raise RuntimeError(
                f"unexpected COMPLETE for window {msg.window} "
                f"(pending: {None if state is None else state.window})"
            )
        if msg.server not in state.expected:
            raise RuntimeError(
                f"COMPLETE from server {msg.server} not awaited in "
                f"window {msg.window}"
            )
        state.expected.discard(msg.server)
        state.replies[msg.server] = msg
        if state.expected:
            return None
        return self._finalize_window()

    def handle_heartbeat(self, msg: Heartbeat) -> None:
        self.last_heartbeat[msg.server] = time.monotonic()

    def handle_register(self, msg: Register) -> None:
        """A stub announced itself: record it, park a rejoin if down.

        The initial hello (server already up) just refreshes the
        heartbeat registry.  A registration for a *down* server is the
        rejoin path: it is parked and folded into membership when the
        SUBMIT for ``msg.window`` arrives, so the membership edge lands
        at a deterministic window boundary on both transports no matter
        when the reconnection raced in.
        """
        if not 0 <= msg.server < self.n:
            raise ValueError(f"server {msg.server} out of range")
        nominal = float(self.config.speeds[msg.server])
        if float(msg.speed) != nominal:
            raise RuntimeError(
                f"server {msg.server} registered speed {msg.speed!r}, "
                f"config says {nominal!r} — speed vectors drifted between "
                "components"
            )
        self.last_heartbeat[msg.server] = time.monotonic()
        if self.up[msg.server]:
            return
        self._rejoins[msg.server] = msg
        counters.inc("net.server_register", state="parked")

    def _apply_rejoins(self, window: int) -> None:
        """Fold parked rejoins due at *window* back into membership.

        The repair mirror of :meth:`handle_server_down`: flip the
        shard-local up mask, then ``mark_server_up`` with fresh
        estimates — the warm-up guard resets the server's speed EWMA so
        it re-enters at nominal speed (a restarted process has no
        backlog and its pre-crash throughput is stale) — which dirties
        membership and forces the out-of-band full-bank re-solve at
        this window's boundary.
        """
        start = window * self.config.control_period
        for server in sorted(self._rejoins):
            if self._rejoins[server].window <= window:
                del self._rejoins[server]
                self.up[server] = True
                self.controller.mark_server_up(
                    server, start, fresh_estimates=True
                )
                counters.inc("net.server_rejoin")

    def live_capacity(self) -> float:
        """The shard's live capacity: nominal speeds of its up servers.

        Published on every RESOLVE for the client's capacity-aware
        router; moves only on membership edges.
        """
        return float(
            np.asarray(self.config.speeds, dtype=float)[self.up].sum()
        )

    def handle_server_down(self, server: int) -> Resolve | None:
        """Failure-detector input: *server* is gone (EOF or timeout).

        Marks it down for the controller's next boundary re-solve and
        converts its pending slice — if any — to losses; returns the
        RESOLVE when this completes the in-flight window's barrier.
        """
        if not 0 <= server < self.n:
            raise ValueError(f"server {server} out of range")
        if not self.up[server]:
            return None
        self.up[server] = False
        state = self._pending
        now = state.end if state is not None else self.windows_done * \
            self.config.control_period
        self.controller.mark_server_down(server, now)
        counters.inc("net.server_down")
        if state is not None and server in state.expected:
            lo, hi = state.bounds[server], state.bounds[server + 1]
            state.lost += int(hi - lo)
            state.expected.discard(server)
            if not state.expected:
                return self._finalize_window()
        return None

    # ------------------------------------------------------------------
    # Window close-out
    # ------------------------------------------------------------------

    def _finalize_window(self) -> Resolve:
        """Fold replies, close the estimator window, emit the RESOLVE.

        Fault-free (``lost == 0``) folding is bit-identical to the
        in-process loop; with losses the surviving slices are folded in
        server-index order with compacted offsets (lost jobs produce no
        witnesses and no response samples).
        """
        state = self._pending
        assert state is not None
        self._pending = None
        controller = self.controller
        n_adm = int(state.adm_times.size)
        completed = n_adm - state.lost

        if state.lost == 0 and n_adm:
            # Grouped arrays reassembled exactly as the replay emits
            # them: per-server slices concatenated in server order.
            svc_g = np.empty(n_adm)
            dep_g = np.empty(n_adm)
            for i, reply in sorted(state.replies.items()):
                lo, hi = state.bounds[i], state.bounds[i + 1]
                svc_g[lo:hi] = reply.service_times
                dep_g[lo:hi] = reply.departures
            sizes_g = state.adm_sizes[state.order]
            witg = sizes_g / svc_g
            controller.observe_services_grouped(witg, state.bounds)
            departures = np.empty(n_adm)
            departures[state.order] = dep_g
            response = departures - state.adm_times
            mrt = float(response.mean())
            ratio = float((response / state.adm_sizes).mean())
            controller.observe_responses(response)
        elif completed > 0:
            # Kill path: fold survivors only, server-grouped order.
            svc_parts = []
            resp_parts = []
            witnesses = np.empty(completed)
            offsets = np.zeros(self.n + 1, dtype=np.int64)
            pos = 0
            for i in range(self.n):
                reply = state.replies.get(i)
                if reply is None:
                    offsets[i + 1] = pos
                    continue
                lo, hi = state.bounds[i], state.bounds[i + 1]
                idx = state.order[lo:hi]
                svc = np.asarray(reply.service_times)
                dep = np.asarray(reply.departures)
                witnesses[pos:pos + idx.size] = state.adm_sizes[idx] / svc
                svc_parts.append(state.adm_sizes[idx])
                resp_parts.append(dep - state.adm_times[idx])
                pos += int(idx.size)
                offsets[i + 1] = pos
            controller.observe_services_grouped(witnesses, offsets)
            resp = np.concatenate(resp_parts)
            sizes_c = np.concatenate(svc_parts)
            mrt = float(resp.mean())
            ratio = float((resp / sizes_c).mean())
            controller.observe_responses(resp)
        else:
            mrt = float("nan")
            ratio = float("nan")

        if state.lost:
            counters.inc("service.jobs_lost", value=int(state.lost))

        decision = controller.resolve(state.end)
        if decision.swapped:
            self.dispatcher = SequenceRoundRobin()
            self.dispatcher.reset(decision.alphas)
        self.decisions.append(decision)

        estimate = decision.estimate
        report = self.report
        report.windows.append(
            WindowRecord(
                start=state.start,
                end=state.end,
                offered=state.offered,
                admitted=n_adm,
                shed=state.shed,
                mean_response_time=mrt,
                mean_response_ratio=ratio,
                lambda_hat=(estimate.arrival_rate if estimate else float("nan")),
                rho_hat=(estimate.utilization if estimate else float("nan")),
                swapped=decision.swapped,
                alphas=decision.alphas,
                p50=decision.window_p50,
                p99=decision.window_p99,
                completed=completed,
                lost=state.lost,
                servers_up=int(self.up.sum()),
                reason=decision.reason,
            )
        )
        report.jobs_offered += state.offered
        report.jobs_dispatched += n_adm
        report.jobs_shed += state.shed
        report.jobs_lost += state.lost
        self.windows_done += 1
        if state.final:
            self._finalize_report()
        return Resolve(
            window=state.window,
            alphas=tuple(float(a) for a in decision.alphas),
            swapped=decision.swapped,
            reason=decision.reason,
            offered=state.offered,
            admitted=n_adm,
            shed=state.shed,
            lost=state.lost,
            final=state.final,
            capacity=self.live_capacity(),
        )

    def _finalize_report(self) -> None:
        report = self.report
        controller = self.controller
        report.swaps = controller.swaps
        report.resolves = controller.resolves
        report.membership_changes = controller.membership_events
        report.p50 = controller.p50.value
        report.p99 = controller.p99.value
        report.clean_shutdown = True
        self.finished = True
