"""Server stub: replays dispatched window slices, reports completions.

One stub models one machine of the pool.  It owns exactly the state a
real FCFS worker needs across windows — the time it frees up — and
replays each DISPATCH slice with :func:`repro.service.replay.lindley_window`,
the same per-server recursion the in-process :class:`ServerBank` runs
(bit-identical, by construction).  Everything else (membership,
estimation, allocation) lives in the orchestrator; the stub is
deliberately dumb so the equivalence argument stays small.

The stub is sans-IO: :meth:`handle_message` maps one inbound message to
a list of outbound messages.  The socket runtime wraps it in a
connect-and-loop coroutine; the in-process transport calls it directly.

``die_after_window`` scripts the chaos drill: after replying to that
window the stub "crashes" (drops its connection / refuses further
dispatches), which the orchestrator must detect within one control
period.  ``hang_after_window`` scripts the nastier failure mode: the
stub keeps its connection open but stops replying, so only the
heartbeat-staleness timeout can catch it.  A *restarted* stub is a
fresh :class:`ServerStub` with ``incarnation`` bumped — new process,
empty backlog — that re-registers with the orchestrator at a scripted
rejoin window.
"""

from __future__ import annotations

import numpy as np

from ..service.replay import lindley_window
from .protocol import Complete, Dispatch, Heartbeat, Message, Register, Shutdown

__all__ = ["ServerStub", "ServerDead"]


class ServerDead(RuntimeError):
    """Raised when a dispatch reaches a stub past its scripted death."""


class ServerStub:
    """Per-server FCFS replay worker with carried backlog."""

    def __init__(
        self,
        server_id: int,
        speed: float,
        *,
        die_after_window: int | None = None,
        hang_after_window: int | None = None,
        incarnation: int = 0,
    ):
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.server_id = int(server_id)
        self.speed = float(speed)
        self.free_at = 0.0
        self.windows_replayed = 0
        self.jobs_replayed = 0
        self.die_after_window = die_after_window
        self.hang_after_window = hang_after_window
        self.incarnation = int(incarnation)

    def dead_at(self, window: int) -> bool:
        """Whether the scripted crash has happened before *window*."""
        return (
            self.die_after_window is not None
            and window > self.die_after_window
        )

    def hangs_at(self, window: int) -> bool:
        """Whether the scripted hang has started before *window*.

        A hung stub swallows dispatches without replying — the
        connection stays open, so only the orchestrator's
        heartbeat-staleness timeout can declare it dead.
        """
        return (
            self.hang_after_window is not None
            and window > self.hang_after_window
        )

    def register(self, *, window: int = 0) -> Register:
        """The hello sent on connect; *window* is the first live window.

        The initial connect registers for window 0; a restarted stub
        (``incarnation > 0``) registers for its scripted rejoin window,
        which the orchestrator applies at that window boundary.
        """
        return Register(
            server=self.server_id,
            speed=self.speed,
            window=int(window),
            incarnation=self.incarnation,
        )

    def handle_dispatch(self, msg: Dispatch) -> list[Message]:
        """Replay one window slice; answer COMPLETE + HEARTBEAT."""
        if msg.server != self.server_id:
            raise ValueError(
                f"dispatch for server {msg.server} reached stub {self.server_id}"
            )
        if self.dead_at(msg.window):
            raise ServerDead(
                f"server {self.server_id} died after window {self.die_after_window}"
            )
        times = np.asarray(msg.times, dtype=float)
        sizes = np.asarray(msg.sizes, dtype=float)
        dep, svc, self.free_at = lindley_window(
            times, sizes, self.speed, self.free_at
        )
        self.windows_replayed += 1
        self.jobs_replayed += int(times.size)
        return [
            Complete(
                window=msg.window,
                server=self.server_id,
                departures=tuple(dep.tolist()),
                service_times=tuple(svc.tolist()),
            ),
            Heartbeat(
                server=self.server_id,
                window=msg.window,
                free_at=self.free_at,
            ),
        ]

    def handle_message(self, msg: Message) -> list[Message]:
        """Sans-IO entry point: one inbound message → outbound replies."""
        if isinstance(msg, Dispatch):
            return self.handle_dispatch(msg)
        if isinstance(msg, Shutdown):
            return []
        raise ValueError(f"server stub cannot handle {type(msg).__name__}")
