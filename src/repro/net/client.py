"""Load-generator client: windows of arrivals, credit-based rate control.

The client walks a :class:`~repro.service.sources.JobSource` one
control window at a time with the exact call pattern of the in-process
loop (``jobs_until(min((k+1)·cp, duration))``), so the source's RNG
stream state — and therefore the offered stream — is identical between
a networked run and a :class:`SchedulerService` run of the same seed.

Rate control is a credit window: at most ``max_inflight`` submitted
windows may be unacknowledged per shard; a RESOLVE returns the credit.
``max_inflight = 1`` is the strict barrier mode the equivalence tests
pin; the overload drill raises it to prove the orchestrator's bounded
queue holds under a client pushing far ahead of the dispatch plane.

With ``n_shards > 1`` each window's jobs are split by job-index
interleave (job ``j`` goes to shard ``j mod S``) — deterministic, and
load-balanced for any arrival pattern.
"""

from __future__ import annotations

import numpy as np

from ..service.sources import JobSource
from .protocol import Resolve, Submit

__all__ = ["LoadClient"]


class LoadClient:
    """Sans-IO window submitter over a job source."""

    def __init__(
        self,
        source: JobSource,
        duration: float,
        control_period: float,
        *,
        n_shards: int = 1,
        max_inflight: int = 1,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.source = source
        self.duration = float(duration)
        self.control_period = float(control_period)
        self.n_shards = int(n_shards)
        self.max_inflight = int(max_inflight)
        self.n_windows = int(np.ceil(self.duration / self.control_period))
        self.next_window = 0
        self.inflight = 0  # unacknowledged (window, shard) submits
        self.peak_inflight = 0  # in windows, max over the run
        self.acked_windows = 0
        self.resolves: list[Resolve] = []
        self._acks_pending: dict[int, int] = {}

    @property
    def done(self) -> bool:
        return self.acked_windows >= self.n_windows

    def can_submit(self) -> bool:
        """Whether the credit window admits another submit right now."""
        return (
            self.next_window < self.n_windows
            and len(self._acks_pending) < self.max_inflight
        )

    def next_submits(self) -> list[Submit] | None:
        """Produce window ``next_window``'s SUBMIT per shard, or None.

        Call only when :meth:`can_submit`; the transport awaits credit
        otherwise.  Consumes the job source — call exactly once per
        window, in order.
        """
        if self.next_window >= self.n_windows:
            return None
        k = self.next_window
        end = min((k + 1) * self.control_period, self.duration)
        times, sizes = self.source.jobs_until(end)
        final = k == self.n_windows - 1
        submits = []
        for s in range(self.n_shards):
            submits.append(
                Submit(
                    window=k,
                    times=tuple(times[s::self.n_shards].tolist()),
                    sizes=tuple(sizes[s::self.n_shards].tolist()),
                    final=final,
                )
            )
        self.next_window += 1
        self._acks_pending[k] = self.n_shards
        self.inflight = len(self._acks_pending)
        self.peak_inflight = max(self.peak_inflight, self.inflight)
        return submits

    def handle_resolve(self, msg: Resolve) -> None:
        """Bank one shard's RESOLVE; release the credit on the last."""
        remaining = self._acks_pending.get(msg.window)
        if remaining is None:
            raise RuntimeError(f"RESOLVE for unsubmitted window {msg.window}")
        self.resolves.append(msg)
        if remaining == 1:
            del self._acks_pending[msg.window]
            self.acked_windows += 1
        else:
            self._acks_pending[msg.window] = remaining - 1
        self.inflight = len(self._acks_pending)
