"""Load-generator client: windows of arrivals, credit-based rate control.

The client walks a :class:`~repro.service.sources.JobSource` one
control window at a time with the exact call pattern of the in-process
loop (``jobs_until(min((k+1)·cp, duration))``), so the source's RNG
stream state — and therefore the offered stream — is identical between
a networked run and a :class:`SchedulerService` run of the same seed.

Rate control is a credit window: at most ``max_inflight`` submitted
windows may be unacknowledged per shard; a RESOLVE returns the credit.
``max_inflight = 1`` is the strict barrier mode the equivalence tests
pin; the overload drill raises it to prove the orchestrator's bounded
queue holds under a client pushing far ahead of the dispatch plane.

**Capacity-aware shard routing.**  With ``n_shards > 1`` each window's
jobs are split by a weighted round robin over the shards, driven by
the per-shard capacity weights the orchestrators publish (sum of
nominal speeds of each shard's live servers, carried on every RESOLVE
and moving only on membership edges).  The discretization is the same
virtual-deadline scheme as the Algorithm 2 sequence — each shard's
next job carries a deadline of ``(count+1)/fraction`` arrivals and the
earliest eligible deadline wins — so the split is deterministic,
CRN-stable, and never strays more than one job from the exact
fractional share (:class:`CapacityRouter`).  A capacity update takes
effect ``max_inflight`` windows after the window that published it:
that is the freshest window whose RESOLVEs are *guaranteed* banked
before the next submit on both transports, which keeps the split — and
therefore the per-shard reports — byte-identical between the
in-process and socket modes even under a pipelined client.

``split="even"`` keeps the legacy job-index interleave (job ``j`` to
shard ``j mod S``) — heterogeneity-blind, retained as the control arm
of the rebalanced-overload drill.

The client also tracks RESOLVE round-trip latency per shard ack in a
:class:`~repro.metrics.online.LatencyStats` (``rtt``): submit-to-RESOLVE
wall time, surfaced as p50/p99 by ``NetMetrics`` and ``bench --net``.
"""

from __future__ import annotations

import time

import numpy as np

from ..metrics.online import LatencyStats
from ..service.sources import JobSource
from .protocol import Resolve, Submit

__all__ = ["CapacityRouter", "LoadClient"]


class CapacityRouter:
    """Deterministic weighted split of a job stream across shards.

    The same deadline discretization as the Algorithm 2 dispatch
    sequence: shard *s*'s ``c+1``-th job carries a virtual deadline of
    ``(c+1)/f_s`` arrivals, and every arriving job goes to the
    *eligible* shard with the earliest deadline (ties to the lowest
    index), where a shard is eligible once its fractional share has
    released the job (``c_s ≤ n·f_s`` after ``n`` jobs total).  The
    eligibility gate bounds over-service — a shard is only ever served
    at or below its exact share, so ``c_s ≤ n·f_s + 1`` — and
    earliest-deadline-first at total utilization one meets every
    deadline, bounding under-service (``c_s > n·f_s − 1``): each
    shard's count stays within one job of its exact fractional share
    ``n·f_s``, the bound the hypothesis suite pins.  (The plain
    largest-claim accumulator lacks the eligibility gate and can starve
    one of two equal-weight shards past a full job.)  The deadline
    state carries across windows, so the bound is global, not
    per-window.  Weight changes reset it (a new regime, like a
    dispatcher swap); identical weights are a no-op, so steady
    republication of an unchanged capacity never perturbs the split.
    """

    def __init__(self, weights):
        self.fractions: np.ndarray | None = None
        self.set_weights(weights)

    def set_weights(self, weights) -> bool:
        """Adopt *weights* (any positive scale); True if they changed."""
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D vector")
        if np.any(w < 0.0) or not np.all(np.isfinite(w)):
            raise ValueError(f"weights must be finite and >= 0, got {w}")
        total = w.sum()
        if total <= 0.0:
            raise ValueError("at least one weight must be positive")
        fractions = w / total
        if self.fractions is not None and np.array_equal(
            fractions, self.fractions
        ):
            return False
        self.fractions = fractions
        self._frac = [float(f) for f in fractions]
        self._inv = [1.0 / f if f > 0.0 else float("inf") for f in self._frac]
        self._active = [i for i, f in enumerate(self._frac) if f > 0.0]
        self._counts = [0] * fractions.size
        self._jobs = 0
        return True

    def route(self, count: int) -> np.ndarray:
        """Shard targets for the next *count* jobs of the stream."""
        targets = np.empty(int(count), dtype=np.int64)
        counts, frac, inv = self._counts, self._frac, self._inv
        for j in range(int(count)):
            n = self._jobs
            sel = -1
            best = 0.0
            for i in self._active:
                if counts[i] > n * frac[i]:  # share hasn't released it
                    continue
                d = (counts[i] + 1) * inv[i]
                if sel == -1 or d < best:
                    best, sel = d, i
            if sel == -1:
                # Float-rounding corner (Σf marginally < 1 can leave no
                # shard released): earliest deadline outright.
                for i in self._active:
                    d = (counts[i] + 1) * inv[i]
                    if sel == -1 or d < best:
                        best, sel = d, i
            counts[sel] += 1
            self._jobs = n + 1
            targets[j] = sel
        return targets


class LoadClient:
    """Sans-IO window submitter over a job source."""

    def __init__(
        self,
        source: JobSource,
        duration: float,
        control_period: float,
        *,
        n_shards: int = 1,
        max_inflight: int = 1,
        shard_weights=None,
        split: str = "capacity",
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if split not in ("capacity", "even"):
            raise ValueError(f"split must be 'capacity' or 'even', got {split!r}")
        self.source = source
        self.duration = float(duration)
        self.control_period = float(control_period)
        self.n_shards = int(n_shards)
        self.max_inflight = int(max_inflight)
        self.split = split
        if shard_weights is None:
            shard_weights = np.ones(self.n_shards)
        self.shard_weights = np.asarray(shard_weights, dtype=float)
        if self.shard_weights.size != self.n_shards:
            raise ValueError(
                f"shard_weights has {self.shard_weights.size} entries "
                f"for {self.n_shards} shards"
            )
        self.router = CapacityRouter(self.shard_weights)
        self.n_windows = int(np.ceil(self.duration / self.control_period))
        self.next_window = 0
        self.inflight = 0  # unacknowledged (window, shard) submits
        self.peak_inflight = 0  # in windows, max over the run
        self.acked_windows = 0
        self.resolves: list[Resolve] = []
        self.rtt = LatencyStats()  # submit → RESOLVE round trips
        self._acks_pending: dict[int, int] = {}
        self._submitted_at: dict[int, float] = {}
        #: Per-window published capacities: window → per-shard vector.
        self._capacities: dict[int, list[float]] = {}

    @property
    def done(self) -> bool:
        return self.acked_windows >= self.n_windows

    def can_submit(self) -> bool:
        """Whether the credit window admits another submit right now."""
        return (
            self.next_window < self.n_windows
            and len(self._acks_pending) < self.max_inflight
        )

    def _weights_for(self, k: int) -> np.ndarray:
        """Routing weights for window *k*: the freshest guaranteed set.

        The credit window proves every shard's RESOLVE for window
        ``k - max_inflight`` is banked before window ``k`` can be
        submitted — so that window's published capacities are the
        newest ones whose availability does not depend on socket
        timing.  Windows before the first guaranteed publication (and a
        degenerate all-zero publication, i.e. every bank dead) fall
        back to the initial nominal weights.
        """
        ref = k - self.max_inflight
        published = self._capacities.get(ref)
        if published is not None and sum(published) > 0.0:
            weights = np.asarray(published, dtype=float)
        else:
            weights = self.shard_weights
        # Drop publications too old to ever be referenced again.
        for w in [w for w in self._capacities if w < ref]:
            del self._capacities[w]
        return weights

    def next_submits(self) -> list[Submit] | None:
        """Produce window ``next_window``'s SUBMIT per shard, or None.

        Call only when :meth:`can_submit`; the transport awaits credit
        otherwise.  Consumes the job source — call exactly once per
        window, in order.
        """
        if self.next_window >= self.n_windows:
            return None
        k = self.next_window
        end = min((k + 1) * self.control_period, self.duration)
        times, sizes = self.source.jobs_until(end)
        final = k == self.n_windows - 1
        submits = []
        if self.split == "even" or self.n_shards == 1:
            for s in range(self.n_shards):
                submits.append(
                    Submit(
                        window=k,
                        times=tuple(times[s::self.n_shards].tolist()),
                        sizes=tuple(sizes[s::self.n_shards].tolist()),
                        final=final,
                    )
                )
        else:
            self.router.set_weights(self._weights_for(k))
            targets = self.router.route(times.size)
            for s in range(self.n_shards):
                idx = targets == s
                submits.append(
                    Submit(
                        window=k,
                        times=tuple(times[idx].tolist()),
                        sizes=tuple(sizes[idx].tolist()),
                        final=final,
                    )
                )
        self.next_window += 1
        self._acks_pending[k] = self.n_shards
        self._submitted_at[k] = time.perf_counter()
        self.inflight = len(self._acks_pending)
        self.peak_inflight = max(self.peak_inflight, self.inflight)
        return submits

    def handle_resolve(self, msg: Resolve, shard: int = 0) -> None:
        """Bank one shard's RESOLVE; release the credit on the last."""
        remaining = self._acks_pending.get(msg.window)
        if remaining is None:
            raise RuntimeError(f"RESOLVE for unsubmitted window {msg.window}")
        self.resolves.append(msg)
        self.rtt.observe(
            max(0.0, time.perf_counter() - self._submitted_at[msg.window])
        )
        caps = self._capacities.setdefault(msg.window, [0.0] * self.n_shards)
        caps[int(shard)] = float(msg.capacity)
        if remaining == 1:
            del self._acks_pending[msg.window]
            del self._submitted_at[msg.window]
            self.acked_windows += 1
        else:
            self._acks_pending[msg.window] = remaining - 1
        self.inflight = len(self._acks_pending)
