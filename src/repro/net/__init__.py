"""Networked dispatcher service: client / orchestrator / server split.

The storalloc-style three-component architecture over the quasi-static
serving stack (DESIGN.md §11): a load-generator client
(:mod:`~repro.net.client`), Algorithm 2 orchestrator shards
(:mod:`~repro.net.orchestrator`), and FCFS server stubs
(:mod:`~repro.net.server`) exchange versioned messages
(:mod:`~repro.net.protocol`) over one transport interface with two
implementations (:mod:`~repro.net.runtime`): a deterministic in-process
loop bit-comparable to :class:`~repro.service.loop.SchedulerService`,
and asyncio TCP sockets.
"""

from .client import CapacityRouter, LoadClient
from .orchestrator import OrchestratorShard, shard_config
from .protocol import (
    PROTOCOL_VERSION,
    Complete,
    Dispatch,
    Heartbeat,
    Message,
    ProtocolError,
    Register,
    Resolve,
    Shutdown,
    Submit,
    VersionMismatch,
    decode,
    encode,
    pack,
    unpack,
)
from .runtime import NetMetrics, NetRunResult, run_in_process, run_sockets
from .server import ServerDead, ServerStub

__all__ = [
    "PROTOCOL_VERSION",
    "Submit",
    "Dispatch",
    "Complete",
    "Heartbeat",
    "Register",
    "Resolve",
    "Shutdown",
    "Message",
    "ProtocolError",
    "VersionMismatch",
    "encode",
    "decode",
    "pack",
    "unpack",
    "CapacityRouter",
    "LoadClient",
    "OrchestratorShard",
    "shard_config",
    "ServerStub",
    "ServerDead",
    "NetMetrics",
    "NetRunResult",
    "run_in_process",
    "run_sockets",
]
