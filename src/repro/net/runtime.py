"""Transports and run harnesses for the networked dispatcher.

Two transports drive the same sans-IO components
(:class:`LoadClient` / :class:`OrchestratorShard` / :class:`ServerStub`):

* :func:`run_in_process` — the simulation mode: a deterministic serial
  loop that moves every message through the wire codec
  (``unpack(pack(msg))``) but no sockets.  Fault-free runs are
  byte-comparable to :class:`~repro.service.loop.SchedulerService`.
* :func:`run_sockets` — the live mode: asyncio TCP on loopback, one
  connection per component, length-prefixed JSON frames.  The math is
  the same bits (JSON floats round-trip exactly); only arrival order
  of messages from *different* connections varies, and the orchestrator
  folds replies behind a per-window barrier in server-index order, so
  fault-free socket runs reproduce the in-process report byte for byte.

**Backpressure.**  The client submits at most ``max_inflight``
unacknowledged windows (RESOLVE returns the credit); the orchestrator
buffers at most ``queue_limit`` submitted windows (a semaphore over the
inbound queue) — anything beyond that stays in kernel socket buffers,
which is TCP backpressure doing its job.  The overload drill pins both:
a client pushed far ahead must saturate its credit window, never exceed
the orchestrator's buffer bound, and produce the identical report.

**Failure detection.**  Connection EOF is the primary detector (a dead
stub's socket closes); a ``reply_timeout`` on the window barrier is the
heartbeat-staleness fallback.  A scripted kill (``kill={server: k}``)
makes the stub drop its connection at the first dispatch after window
``k`` — both transports detect it during window ``k+1``, so kill drills
are deterministic and transport-agnostic.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

from ..service.loop import ServiceConfig, ServiceReport
from ..service.sources import JobSource
from .client import LoadClient
from .orchestrator import OrchestratorShard, shard_config
from .protocol import (
    Complete,
    Dispatch,
    Heartbeat,
    Message,
    ProtocolError,
    Resolve,
    Shutdown,
    Submit,
    pack,
    read_message,
    unpack,
    write_message,
)
from .server import ServerStub

__all__ = ["NetMetrics", "NetRunResult", "run_in_process", "run_sockets"]


@dataclass
class NetMetrics:
    """First-class serving metrics of one networked run."""

    transport: str
    n_shards: int
    max_inflight: int
    queue_limit: int
    windows: int
    wall_seconds: float
    jobs_offered: int
    jobs_dispatched: int
    jobs_shed: int
    jobs_lost: int
    jobs_per_sec: float
    dispatch_seconds: float
    dispatch_ns_per_job: float
    peak_inflight: int
    peak_submit_queue: int

    def as_dict(self) -> dict:
        return {
            "transport": self.transport,
            "n_shards": self.n_shards,
            "max_inflight": self.max_inflight,
            "queue_limit": self.queue_limit,
            "windows": self.windows,
            "wall_seconds": self.wall_seconds,
            "jobs_offered": self.jobs_offered,
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_shed": self.jobs_shed,
            "jobs_lost": self.jobs_lost,
            "jobs_per_sec": self.jobs_per_sec,
            "dispatch_seconds": self.dispatch_seconds,
            "dispatch_ns_per_job": self.dispatch_ns_per_job,
            "peak_inflight": self.peak_inflight,
            "peak_submit_queue": self.peak_submit_queue,
        }


@dataclass
class NetRunResult:
    """Everything one networked run produced."""

    reports: list[ServiceReport]
    shards: list[OrchestratorShard]
    client: LoadClient
    metrics: NetMetrics

    @property
    def report(self) -> ServiceReport:
        """The single-shard report (raises on a sharded run)."""
        if len(self.reports) != 1:
            raise ValueError(f"run has {len(self.reports)} shards, not 1")
        return self.reports[0]

    @property
    def decisions(self):
        return [sh.decisions for sh in self.shards]


def _build_shards(
    config: ServiceConfig, n_shards: int
) -> list[OrchestratorShard]:
    return [
        OrchestratorShard(shard_config(config, s, n_shards), shard_id=s)
        for s in range(n_shards)
    ]


def _build_stubs(
    config: ServiceConfig, n_shards: int, kill: dict[int, int] | None
) -> list[list[ServerStub]]:
    """Per-shard stub lists; *kill* maps global server → last window."""
    kill = kill or {}
    stubs: list[list[ServerStub]] = [[] for _ in range(n_shards)]
    for g, speed in enumerate(config.speeds):
        shard, local = g % n_shards, g // n_shards
        stubs[shard].append(
            ServerStub(local, speed, die_after_window=kill.get(g))
        )
    return stubs


def _metrics(
    transport: str,
    shards: list[OrchestratorShard],
    client: LoadClient,
    wall: float,
    *,
    queue_limit: int,
    peak_submit_queue: int,
) -> NetMetrics:
    offered = sum(sh.report.jobs_offered for sh in shards)
    dispatched = sum(sh.report.jobs_dispatched for sh in shards)
    dispatch_seconds = sum(
        sh.decision_latency.total_seconds for sh in shards
    )
    decided = sum(sh.decision_latency.jobs for sh in shards)
    return NetMetrics(
        transport=transport,
        n_shards=len(shards),
        max_inflight=client.max_inflight,
        queue_limit=queue_limit,
        windows=client.n_windows,
        wall_seconds=wall,
        jobs_offered=offered,
        jobs_dispatched=dispatched,
        jobs_shed=sum(sh.report.jobs_shed for sh in shards),
        jobs_lost=sum(sh.report.jobs_lost for sh in shards),
        jobs_per_sec=(dispatched / wall if wall > 0 else float("inf")),
        dispatch_seconds=dispatch_seconds,
        dispatch_ns_per_job=(
            dispatch_seconds * 1e9 / decided if decided else 0.0
        ),
        peak_inflight=client.peak_inflight,
        peak_submit_queue=peak_submit_queue,
    )


# ----------------------------------------------------------------------
# Simulation mode: deterministic in-process transport
# ----------------------------------------------------------------------


def run_in_process(
    config: ServiceConfig,
    source: JobSource,
    *,
    n_shards: int = 1,
    kill: dict[int, int] | None = None,
    codec: bool = True,
) -> NetRunResult:
    """Run the three components through a serial in-process transport.

    Every message still round-trips ``unpack(pack(msg))`` (disable with
    ``codec=False`` to time the pure decision plane), so the only thing
    this mode removes relative to :func:`run_sockets` is the wire — the
    exact property the sim-vs-live equivalence tests pin.
    """
    rt = (lambda m: unpack(pack(m))) if codec else (lambda m: m)
    shards = _build_shards(config, n_shards)
    stubs = _build_stubs(config, n_shards, kill)
    client = LoadClient(
        source, config.duration, config.control_period, n_shards=n_shards
    )
    t0 = time.perf_counter()
    while not client.done:
        submits = client.next_submits()
        assert submits is not None  # max_inflight=1: strict alternation
        for s, sub in enumerate(submits):
            shard = shards[s]
            dispatches, resolve = shard.handle_submit(rt(sub))
            for d in dispatches:
                dmsg = rt(d)
                stub = stubs[s][dmsg.server]
                if stub.dead_at(dmsg.window):
                    done = shard.handle_server_down(dmsg.server)
                    resolve = done if done is not None else resolve
                    continue
                for reply in stub.handle_dispatch(dmsg):
                    reply = rt(reply)
                    if isinstance(reply, Complete):
                        done = shard.handle_complete(reply)
                        resolve = done if done is not None else resolve
                    else:
                        shard.handle_heartbeat(reply)
            assert resolve is not None  # barrier closes within the turn
            client.handle_resolve(rt(resolve))
    wall = time.perf_counter() - t0
    return NetRunResult(
        reports=[sh.report for sh in shards],
        shards=shards,
        client=client,
        metrics=_metrics(
            "inproc", shards, client, wall,
            queue_limit=1, peak_submit_queue=1,
        ),
    )


# ----------------------------------------------------------------------
# Live mode: asyncio TCP on loopback
# ----------------------------------------------------------------------


class _ShardNet:
    """Per-shard socket-side state shared by the connection handlers."""

    def __init__(self, shard: OrchestratorShard, queue_limit: int):
        self.shard = shard
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.submit_slots = asyncio.Semaphore(queue_limit)
        self.stub_writers: dict[int, asyncio.StreamWriter] = {}
        self.client_writer: asyncio.StreamWriter | None = None
        self.registered = asyncio.Event()
        self.buffered_submits = 0
        self.peak_submit_queue = 0
        self.port: int | None = None

    async def handle_connection(self, reader, writer):
        """Classify the peer by its first message, then pump the inbox."""
        try:
            first = await read_message(reader)
        except ProtocolError:
            writer.close()
            return
        try:
            if isinstance(first, Heartbeat):
                await self._pump_server(first, reader, writer)
            elif isinstance(first, Submit):
                await self._pump_client(first, reader, writer)
            # A bare Shutdown or EOF: nothing to do.
        finally:
            if not writer.is_closing():
                writer.close()

    async def _pump_server(self, hello: Heartbeat, reader, writer):
        server = hello.server
        self.stub_writers[server] = writer
        await self.inbox.put(("heartbeat", hello))
        if len(self.stub_writers) == self.shard.n:
            self.registered.set()
        try:
            while True:
                msg = await read_message(reader)
                if msg is None or isinstance(msg, Shutdown):
                    break
                kind = "complete" if isinstance(msg, Complete) else "heartbeat"
                await self.inbox.put((kind, msg))
        except ProtocolError:
            pass
        await self.inbox.put(("down", server))

    async def _pump_client(self, first: Submit, reader, writer):
        self.client_writer = writer
        msg: Message | None = first
        while msg is not None:
            if isinstance(msg, Shutdown):
                await self.inbox.put(("client_shutdown", None))
                break
            if isinstance(msg, Submit):
                # The bounded queue: hold a slot per buffered window.
                await self.submit_slots.acquire()
                self.buffered_submits += 1
                self.peak_submit_queue = max(
                    self.peak_submit_queue, self.buffered_submits
                )
                await self.inbox.put(("submit", msg))
            try:
                msg = await read_message(reader)
            except ProtocolError:
                break


async def _shard_main(net: _ShardNet, reply_timeout: float) -> None:
    """Serialize one shard: windows strictly in order, one at a time."""
    shard = net.shard
    deferred: deque[Submit] = deque()

    async def send_resolve(resolve: Resolve) -> None:
        assert net.client_writer is not None
        write_message(net.client_writer, resolve)
        await net.client_writer.drain()

    async def process_submit(msg: Submit) -> None:
        net.buffered_submits -= 1
        net.submit_slots.release()
        dispatches, resolve = shard.handle_submit(msg)
        touched = []
        for d in dispatches:
            w = net.stub_writers.get(d.server)
            if w is None or w.is_closing():
                done = shard.handle_server_down(d.server)
                resolve = done if done is not None else resolve
                continue
            write_message(w, d)
            touched.append(w)
        for w in touched:
            await w.drain()
        if resolve is not None:
            await send_resolve(resolve)

    while not shard.finished:
        if deferred and not shard.busy:
            await process_submit(deferred.popleft())
            continue
        if shard.busy:
            try:
                kind, msg = await asyncio.wait_for(
                    net.inbox.get(), reply_timeout
                )
            except asyncio.TimeoutError:
                # Heartbeat-staleness fallback: everyone still awaited
                # in the stuck window is presumed dead.
                for server in sorted(shard.awaiting):
                    done = shard.handle_server_down(server)
                    if done is not None:
                        await send_resolve(done)
                continue
        else:
            kind, msg = await net.inbox.get()
        if kind == "submit":
            if shard.busy:
                deferred.append(msg)
            else:
                await process_submit(msg)
        elif kind == "complete":
            done = shard.handle_complete(msg)
            if done is not None:
                await send_resolve(done)
        elif kind == "heartbeat":
            shard.handle_heartbeat(msg)
        elif kind == "down":
            done = shard.handle_server_down(msg)
            if done is not None:
                await send_resolve(done)
        # "client_shutdown" while unfinished is a client bug; the final
        # window's RESOLVE flips `finished`, so it never races this loop.

    for w in net.stub_writers.values():
        if not w.is_closing():
            write_message(w, Shutdown(reason="run complete"))
            try:
                await w.drain()
            except ConnectionError:
                pass
            w.close()


async def _stub_task(stub: ServerStub, host: str, port: int) -> None:
    """One server-stub process: connect, register, replay until told."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        write_message(writer, stub.register())
        await writer.drain()
        while True:
            msg = await read_message(reader)
            if msg is None or isinstance(msg, Shutdown):
                break
            if isinstance(msg, Dispatch):
                if stub.dead_at(msg.window):
                    # The scripted crash: drop the connection without
                    # replying — the orchestrator sees EOF.
                    break
                for out in stub.handle_dispatch(msg):
                    write_message(writer, out)
                await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _client_task(
    client: LoadClient, host: str, ports: list[int]
) -> None:
    """The load generator: submit under credit, bank RESOLVEs."""
    conns = [await asyncio.open_connection(host, p) for p in ports]
    credit = asyncio.Event()

    async def read_resolves(s: int) -> None:
        reader = conns[s][0]
        while True:
            msg = await read_message(reader)
            if msg is None or isinstance(msg, Shutdown):
                break
            if isinstance(msg, Resolve):
                client.handle_resolve(msg)
                credit.set()

    readers = [asyncio.create_task(read_resolves(s)) for s in range(len(conns))]
    try:
        while not client.done:
            if client.can_submit():
                submits = client.next_submits()
                assert submits is not None
                for s, sub in enumerate(submits):
                    write_message(conns[s][1], sub)
                for _, w in conns:
                    await w.drain()
                continue
            credit.clear()
            if client.done or client.can_submit():
                continue
            await credit.wait()
        for _, w in conns:
            write_message(w, Shutdown(reason="stream complete"))
            await w.drain()
        await asyncio.gather(*readers)
    finally:
        for task in readers:
            task.cancel()
        for _, w in conns:
            w.close()


async def run_sockets(
    config: ServiceConfig,
    source: JobSource,
    *,
    n_shards: int = 1,
    max_inflight: int = 1,
    queue_limit: int | None = None,
    kill: dict[int, int] | None = None,
    reply_timeout: float = 30.0,
    host: str = "127.0.0.1",
) -> NetRunResult:
    """Run client, orchestrator shards, and server stubs over TCP.

    Everything runs on loopback in one event loop — the point is the
    real message boundary and the real transport semantics (framing,
    EOF, socket buffering), not multi-host deployment.
    """
    shards = _build_shards(config, n_shards)
    stubs = _build_stubs(config, n_shards, kill)
    client = LoadClient(
        source,
        config.duration,
        config.control_period,
        n_shards=n_shards,
        max_inflight=max_inflight,
    )
    if queue_limit is None:
        queue_limit = max_inflight
    if queue_limit < 1:
        raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")

    nets = [_ShardNet(shard, queue_limit) for shard in shards]
    servers = []
    for net in nets:
        srv = await asyncio.start_server(net.handle_connection, host, 0)
        net.port = srv.sockets[0].getsockname()[1]
        servers.append(srv)

    stub_tasks = [
        asyncio.create_task(_stub_task(stub, host, nets[s].port))
        for s in range(n_shards)
        for stub in stubs[s]
    ]
    shard_tasks = [
        asyncio.create_task(_shard_main(net, reply_timeout)) for net in nets
    ]
    try:
        await asyncio.gather(*(net.registered.wait() for net in nets))
        t0 = time.perf_counter()
        await _client_task(client, host, [net.port for net in nets])
        wall = time.perf_counter() - t0
        await asyncio.gather(*shard_tasks)
        await asyncio.gather(*stub_tasks)
    finally:
        for task in (*stub_tasks, *shard_tasks):
            task.cancel()
        for srv in servers:
            srv.close()
            await srv.wait_closed()
    return NetRunResult(
        reports=[sh.report for sh in shards],
        shards=shards,
        client=client,
        metrics=_metrics(
            "sockets", shards, client, wall,
            queue_limit=queue_limit,
            peak_submit_queue=max(n.peak_submit_queue for n in nets),
        ),
    )
