"""Transports and run harnesses for the networked dispatcher.

Two transports drive the same sans-IO components
(:class:`LoadClient` / :class:`OrchestratorShard` / :class:`ServerStub`):

* :func:`run_in_process` — the simulation mode: a deterministic serial
  loop that moves every message through the wire codec
  (``unpack(pack(msg))``) but no sockets.  Fault-free runs are
  byte-comparable to :class:`~repro.service.loop.SchedulerService`.
* :func:`run_sockets` — the live mode: asyncio TCP on loopback, one
  connection per component, length-prefixed JSON frames.  The math is
  the same bits (JSON floats round-trip exactly); only arrival order
  of messages from *different* connections varies, and the orchestrator
  folds replies behind a per-window barrier in server-index order, so
  fault-free socket runs reproduce the in-process report byte for byte.

**Backpressure.**  The client submits at most ``max_inflight``
unacknowledged windows (RESOLVE returns the credit); the orchestrator
buffers at most ``queue_limit`` submitted windows (a semaphore over the
inbound queue) — anything beyond that stays in kernel socket buffers,
which is TCP backpressure doing its job.  The overload drill pins both:
a client pushed far ahead must saturate its credit window, never exceed
the orchestrator's buffer bound, and produce the identical report.

**Failure detection.**  Connection EOF is the primary detector (a dead
stub's socket closes); a ``reply_timeout`` on the window barrier is the
heartbeat-staleness fallback — when it fires, the shard is marked
suspect and a ``net.heartbeat_stale{shard}`` counter records the event
before the stuck servers are presumed dead.  A scripted kill
(``kill={server: k}``) makes the stub drop its connection at the first
dispatch after window ``k`` — both transports detect it during window
``k+1``, so kill drills are deterministic and transport-agnostic.  A
scripted hang (``hang={server: k}``, socket mode only) keeps the
connection open but swallows dispatches, exercising the staleness path.

**Rejoin.**  ``rejoin={server: w}`` scripts the repair mirror: once the
orchestrator has observed the death, a *fresh* stub (incarnation 1,
empty backlog) reconnects and REGISTERs for window ``w``; the shard
parks the registration and folds the server back into membership at
window ``w``'s boundary, so rejoin drills are window-deterministic on
both transports exactly like kills.  Schedule ``w`` at least two
windows after the death lands so the REGISTER always beats the
boundary on the socket transport.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

from ..obs import counters
from ..service.loop import ServiceConfig, ServiceReport
from ..service.sources import JobSource
from .client import LoadClient
from .orchestrator import OrchestratorShard, shard_config
from .protocol import (
    Complete,
    Dispatch,
    Message,
    ProtocolError,
    Register,
    Resolve,
    Shutdown,
    Submit,
    pack,
    read_message,
    unpack,
    write_message,
)
from .server import ServerStub

__all__ = ["NetMetrics", "NetRunResult", "run_in_process", "run_sockets"]


@dataclass
class NetMetrics:
    """First-class serving metrics of one networked run."""

    transport: str
    n_shards: int
    max_inflight: int
    queue_limit: int
    windows: int
    wall_seconds: float
    jobs_offered: int
    jobs_dispatched: int
    jobs_shed: int
    jobs_lost: int
    jobs_per_sec: float
    dispatch_seconds: float
    dispatch_ns_per_job: float
    peak_inflight: int
    peak_submit_queue: int
    #: Client-side RESOLVE round-trip latency (per shard ack), seconds.
    rtt_p50_s: float = float("nan")
    rtt_p99_s: float = float("nan")
    #: Heartbeat-staleness fallback firings and shards marked suspect.
    stale_timeouts: int = 0
    suspect_shards: int = 0

    def as_dict(self) -> dict:
        return {
            "transport": self.transport,
            "n_shards": self.n_shards,
            "max_inflight": self.max_inflight,
            "queue_limit": self.queue_limit,
            "windows": self.windows,
            "wall_seconds": self.wall_seconds,
            "jobs_offered": self.jobs_offered,
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_shed": self.jobs_shed,
            "jobs_lost": self.jobs_lost,
            "jobs_per_sec": self.jobs_per_sec,
            "dispatch_seconds": self.dispatch_seconds,
            "dispatch_ns_per_job": self.dispatch_ns_per_job,
            "peak_inflight": self.peak_inflight,
            "peak_submit_queue": self.peak_submit_queue,
            "rtt_p50_s": self.rtt_p50_s,
            "rtt_p99_s": self.rtt_p99_s,
            "stale_timeouts": self.stale_timeouts,
            "suspect_shards": self.suspect_shards,
        }


@dataclass
class NetRunResult:
    """Everything one networked run produced."""

    reports: list[ServiceReport]
    shards: list[OrchestratorShard]
    client: LoadClient
    metrics: NetMetrics

    @property
    def report(self) -> ServiceReport:
        """The single-shard report (raises on a sharded run)."""
        if len(self.reports) != 1:
            raise ValueError(f"run has {len(self.reports)} shards, not 1")
        return self.reports[0]

    @property
    def decisions(self):
        return [sh.decisions for sh in self.shards]


def _build_shards(
    config: ServiceConfig, n_shards: int
) -> list[OrchestratorShard]:
    return [
        OrchestratorShard(shard_config(config, s, n_shards), shard_id=s)
        for s in range(n_shards)
    ]


def _build_stubs(
    config: ServiceConfig,
    n_shards: int,
    kill: dict[int, int] | None,
    hang: dict[int, int] | None = None,
) -> list[list[ServerStub]]:
    """Per-shard stub lists; *kill*/*hang* map global server → last window."""
    kill = kill or {}
    hang = hang or {}
    stubs: list[list[ServerStub]] = [[] for _ in range(n_shards)]
    for g, speed in enumerate(config.speeds):
        shard, local = g % n_shards, g // n_shards
        stubs[shard].append(
            ServerStub(
                local, speed,
                die_after_window=kill.get(g),
                hang_after_window=hang.get(g),
            )
        )
    return stubs


def _shard_weights(shards: list[OrchestratorShard]) -> list[float]:
    """Initial router weights: each shard's nominal live capacity.

    Computed by the same reduction the orchestrator publishes on every
    RESOLVE, so the initial weights and the first publication are
    float-identical and the router never sees a spurious weight edge.
    """
    return [sh.live_capacity() for sh in shards]


def _metrics(
    transport: str,
    shards: list[OrchestratorShard],
    client: LoadClient,
    wall: float,
    *,
    queue_limit: int,
    peak_submit_queue: int,
    stale_timeouts: int = 0,
    suspect_shards: int = 0,
) -> NetMetrics:
    offered = sum(sh.report.jobs_offered for sh in shards)
    dispatched = sum(sh.report.jobs_dispatched for sh in shards)
    dispatch_seconds = sum(
        sh.decision_latency.total_seconds for sh in shards
    )
    decided = sum(sh.decision_latency.jobs for sh in shards)
    return NetMetrics(
        transport=transport,
        n_shards=len(shards),
        max_inflight=client.max_inflight,
        queue_limit=queue_limit,
        windows=client.n_windows,
        wall_seconds=wall,
        jobs_offered=offered,
        jobs_dispatched=dispatched,
        jobs_shed=sum(sh.report.jobs_shed for sh in shards),
        jobs_lost=sum(sh.report.jobs_lost for sh in shards),
        jobs_per_sec=(dispatched / wall if wall > 0 else float("inf")),
        dispatch_seconds=dispatch_seconds,
        dispatch_ns_per_job=(
            dispatch_seconds * 1e9 / decided if decided else 0.0
        ),
        peak_inflight=client.peak_inflight,
        peak_submit_queue=peak_submit_queue,
        rtt_p50_s=client.rtt.p50.value,
        rtt_p99_s=client.rtt.p99.value,
        stale_timeouts=stale_timeouts,
        suspect_shards=suspect_shards,
    )


# ----------------------------------------------------------------------
# Simulation mode: deterministic in-process transport
# ----------------------------------------------------------------------


def run_in_process(
    config: ServiceConfig,
    source: JobSource,
    *,
    n_shards: int = 1,
    kill: dict[int, int] | None = None,
    rejoin: dict[int, int] | None = None,
    codec: bool = True,
    split: str = "capacity",
) -> NetRunResult:
    """Run the three components through a serial in-process transport.

    Every message still round-trips ``unpack(pack(msg))`` (disable with
    ``codec=False`` to time the pure decision plane), so the only thing
    this mode removes relative to :func:`run_sockets` is the wire — the
    exact property the sim-vs-live equivalence tests pin.

    ``rejoin={server: w}`` scripts the repair path: once the server's
    death has been observed, a fresh stub (incarnation 1) re-registers
    for window ``w`` — the same window boundary the socket transport
    folds it in at.
    """
    rt = (lambda m: unpack(pack(m))) if codec else (lambda m: m)
    rejoin = rejoin or {}
    shards = _build_shards(config, n_shards)
    stubs = _build_stubs(config, n_shards, kill)
    client = LoadClient(
        source, config.duration, config.control_period,
        n_shards=n_shards, shard_weights=_shard_weights(shards), split=split,
    )
    reborn: set[int] = set()
    t0 = time.perf_counter()
    while not client.done:
        submits = client.next_submits()
        assert submits is not None  # max_inflight=1: strict alternation
        for s, sub in enumerate(submits):
            shard = shards[s]
            dispatches, resolve = shard.handle_submit(rt(sub))
            for d in dispatches:
                dmsg = rt(d)
                stub = stubs[s][dmsg.server]
                if stub.dead_at(dmsg.window):
                    done = shard.handle_server_down(dmsg.server)
                    resolve = done if done is not None else resolve
                    continue
                for reply in stub.handle_dispatch(dmsg):
                    reply = rt(reply)
                    if isinstance(reply, Complete):
                        done = shard.handle_complete(reply)
                        resolve = done if done is not None else resolve
                    else:
                        shard.handle_heartbeat(reply)
            assert resolve is not None  # barrier closes within the turn
            client.handle_resolve(rt(resolve), s)
        # Scripted rejoins: a restarted stub re-registers as soon as the
        # orchestrator has observed its death — mirroring the socket
        # rejoin task, which reconnects on the same trigger.  The shard
        # parks the registration until window `w`'s SUBMIT.
        for g in sorted(rejoin):
            s, local = g % n_shards, g // n_shards
            if g in reborn or shards[s].up[local]:
                continue
            stub = ServerStub(local, config.speeds[g], incarnation=1)
            stubs[s][local] = stub
            shards[s].handle_register(rt(stub.register(window=rejoin[g])))
            reborn.add(g)
    wall = time.perf_counter() - t0
    return NetRunResult(
        reports=[sh.report for sh in shards],
        shards=shards,
        client=client,
        metrics=_metrics(
            "inproc", shards, client, wall,
            queue_limit=1, peak_submit_queue=1,
        ),
    )


# ----------------------------------------------------------------------
# Live mode: asyncio TCP on loopback
# ----------------------------------------------------------------------


class _ShardNet:
    """Per-shard socket-side state shared by the connection handlers."""

    def __init__(self, shard: OrchestratorShard, queue_limit: int):
        self.shard = shard
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.submit_slots = asyncio.Semaphore(queue_limit)
        self.stub_writers: dict[int, asyncio.StreamWriter] = {}
        self.client_writer: asyncio.StreamWriter | None = None
        self.registered = asyncio.Event()
        self.buffered_submits = 0
        self.peak_submit_queue = 0
        self.port: int | None = None
        #: Notified after every shard-loop step; rejoin tasks wait on it
        #: to observe the orchestrator's membership state.
        self.progress = asyncio.Condition()
        #: Heartbeat-staleness bookkeeping: the reply timeout fired and
        #: this shard is suspect (some of its servers were presumed
        #: dead without a connection EOF).
        self.suspect = False
        self.stale_timeouts = 0

    async def handle_connection(self, reader, writer):
        """Classify the peer by its first message, then pump the inbox."""
        try:
            first = await read_message(reader)
        except ProtocolError:
            writer.close()
            return
        try:
            if isinstance(first, Register):
                await self._pump_server(first, reader, writer)
            elif isinstance(first, Submit):
                await self._pump_client(first, reader, writer)
            # A bare Shutdown or EOF: nothing to do.
        finally:
            if not writer.is_closing():
                writer.close()

    async def _pump_server(self, hello: Register, reader, writer):
        server = hello.server
        self.stub_writers[server] = writer
        await self.inbox.put(("register", hello))
        if len(self.stub_writers) == self.shard.n:
            self.registered.set()
        try:
            while True:
                msg = await read_message(reader)
                if msg is None or isinstance(msg, Shutdown):
                    break
                kind = "complete" if isinstance(msg, Complete) else "heartbeat"
                await self.inbox.put((kind, msg))
        except ProtocolError:
            pass
        # Only this connection's death matters — if a restarted stub
        # already re-registered (new writer), the old EOF is stale and
        # must not kill the rejoined server.
        if self.stub_writers.get(server) is writer:
            await self.inbox.put(("down", server))

    async def _pump_client(self, first: Submit, reader, writer):
        self.client_writer = writer
        msg: Message | None = first
        while msg is not None:
            if isinstance(msg, Shutdown):
                await self.inbox.put(("client_shutdown", None))
                break
            if isinstance(msg, Submit):
                # The bounded queue: hold a slot per buffered window.
                await self.submit_slots.acquire()
                self.buffered_submits += 1
                self.peak_submit_queue = max(
                    self.peak_submit_queue, self.buffered_submits
                )
                await self.inbox.put(("submit", msg))
            try:
                msg = await read_message(reader)
            except ProtocolError:
                break


async def _shard_main(net: _ShardNet, reply_timeout: float) -> None:
    """Serialize one shard: windows strictly in order, one at a time."""
    shard = net.shard
    deferred: deque[Submit] = deque()

    async def send_resolve(resolve: Resolve) -> None:
        assert net.client_writer is not None
        write_message(net.client_writer, resolve)
        await net.client_writer.drain()

    async def process_submit(msg: Submit) -> None:
        net.buffered_submits -= 1
        net.submit_slots.release()
        dispatches, resolve = shard.handle_submit(msg)
        touched = []
        for d in dispatches:
            w = net.stub_writers.get(d.server)
            if w is None or w.is_closing():
                done = shard.handle_server_down(d.server)
                resolve = done if done is not None else resolve
                continue
            write_message(w, d)
            touched.append(w)
        for w in touched:
            await w.drain()
        if resolve is not None:
            await send_resolve(resolve)

    async def notify_progress() -> None:
        async with net.progress:
            net.progress.notify_all()

    while not shard.finished:
        if deferred and not shard.busy:
            await process_submit(deferred.popleft())
            await notify_progress()
            continue
        if shard.busy:
            try:
                kind, msg = await asyncio.wait_for(
                    net.inbox.get(), reply_timeout
                )
            except asyncio.TimeoutError:
                # Heartbeat-staleness fallback: the shard goes suspect
                # (counted and surfaced in the run metrics) and everyone
                # still awaited in the stuck window is presumed dead.
                net.suspect = True
                net.stale_timeouts += 1
                counters.inc("net.heartbeat_stale", shard=str(shard.shard_id))
                for server in sorted(shard.awaiting):
                    done = shard.handle_server_down(server)
                    if done is not None:
                        await send_resolve(done)
                await notify_progress()
                continue
        else:
            kind, msg = await net.inbox.get()
        if kind == "submit":
            if shard.busy:
                deferred.append(msg)
            else:
                await process_submit(msg)
        elif kind == "complete":
            done = shard.handle_complete(msg)
            if done is not None:
                await send_resolve(done)
        elif kind == "heartbeat":
            shard.handle_heartbeat(msg)
        elif kind == "register":
            shard.handle_register(msg)
        elif kind == "down":
            done = shard.handle_server_down(msg)
            if done is not None:
                await send_resolve(done)
        # "client_shutdown" while unfinished is a client bug; the final
        # window's RESOLVE flips `finished`, so it never races this loop.
        await notify_progress()

    await notify_progress()  # wake rejoin waiters blocked on a live server
    for w in net.stub_writers.values():
        if not w.is_closing():
            write_message(w, Shutdown(reason="run complete"))
            try:
                await w.drain()
            except ConnectionError:
                pass
            w.close()


async def _stub_task(
    stub: ServerStub, host: str, port: int, *, register_window: int = 0
) -> None:
    """One server-stub process: connect, register, replay until told."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        write_message(writer, stub.register(window=register_window))
        await writer.drain()
        while True:
            msg = await read_message(reader)
            if msg is None or isinstance(msg, Shutdown):
                break
            if isinstance(msg, Dispatch):
                if stub.dead_at(msg.window):
                    # The scripted crash: drop the connection without
                    # replying — the orchestrator sees EOF.
                    break
                if stub.hangs_at(msg.window):
                    # The scripted hang: swallow the dispatch, keep the
                    # connection — only heartbeat staleness catches it.
                    continue
                for out in stub.handle_dispatch(msg):
                    write_message(writer, out)
                await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _rejoin_stub_task(
    net: _ShardNet,
    local: int,
    speed: float,
    window: int,
    host: str,
    port: int,
) -> None:
    """A restarted stub: wait for the death to be observed, reconnect.

    The fresh stub (incarnation 1, empty backlog) REGISTERs for its
    scripted rejoin *window*; the orchestrator parks the registration
    and applies it at that window's boundary, so the connect timing
    itself need not be deterministic — only "after the kill was seen,
    before the rejoin window's SUBMIT", which waiting on the shard's
    progress condition guarantees with windows to spare.
    """
    shard = net.shard
    async with net.progress:
        await net.progress.wait_for(
            lambda: not shard.up[local] or shard.finished
        )
    if shard.finished:
        return
    stub = ServerStub(local, speed, incarnation=1)
    await _stub_task(stub, host, port, register_window=window)


async def _client_task(
    client: LoadClient, host: str, ports: list[int]
) -> None:
    """The load generator: submit under credit, bank RESOLVEs."""
    conns = [await asyncio.open_connection(host, p) for p in ports]
    credit = asyncio.Event()

    async def read_resolves(s: int) -> None:
        reader = conns[s][0]
        while True:
            msg = await read_message(reader)
            if msg is None or isinstance(msg, Shutdown):
                break
            if isinstance(msg, Resolve):
                client.handle_resolve(msg, s)
                credit.set()

    readers = [asyncio.create_task(read_resolves(s)) for s in range(len(conns))]
    try:
        while not client.done:
            if client.can_submit():
                submits = client.next_submits()
                assert submits is not None
                for s, sub in enumerate(submits):
                    write_message(conns[s][1], sub)
                for _, w in conns:
                    await w.drain()
                continue
            credit.clear()
            if client.done or client.can_submit():
                continue
            await credit.wait()
        for _, w in conns:
            write_message(w, Shutdown(reason="stream complete"))
            await w.drain()
        await asyncio.gather(*readers)
    finally:
        for task in readers:
            task.cancel()
        for _, w in conns:
            w.close()


async def run_sockets(
    config: ServiceConfig,
    source: JobSource,
    *,
    n_shards: int = 1,
    max_inflight: int = 1,
    queue_limit: int | None = None,
    kill: dict[int, int] | None = None,
    rejoin: dict[int, int] | None = None,
    hang: dict[int, int] | None = None,
    reply_timeout: float = 30.0,
    host: str = "127.0.0.1",
    split: str = "capacity",
) -> NetRunResult:
    """Run client, orchestrator shards, and server stubs over TCP.

    Everything runs on loopback in one event loop — the point is the
    real message boundary and the real transport semantics (framing,
    EOF, socket buffering), not multi-host deployment.
    """
    shards = _build_shards(config, n_shards)
    stubs = _build_stubs(config, n_shards, kill, hang)
    rejoin = rejoin or {}
    client = LoadClient(
        source,
        config.duration,
        config.control_period,
        n_shards=n_shards,
        max_inflight=max_inflight,
        shard_weights=_shard_weights(shards),
        split=split,
    )
    if queue_limit is None:
        queue_limit = max_inflight
    if queue_limit < 1:
        raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")

    nets = [_ShardNet(shard, queue_limit) for shard in shards]
    servers = []
    for net in nets:
        srv = await asyncio.start_server(net.handle_connection, host, 0)
        net.port = srv.sockets[0].getsockname()[1]
        servers.append(srv)

    stub_tasks = [
        asyncio.create_task(_stub_task(stub, host, nets[s].port))
        for s in range(n_shards)
        for stub in stubs[s]
    ]
    stub_tasks += [
        asyncio.create_task(
            _rejoin_stub_task(
                nets[g % n_shards],
                g // n_shards,
                config.speeds[g],
                window,
                host,
                nets[g % n_shards].port,
            )
        )
        for g, window in sorted(rejoin.items())
    ]
    shard_tasks = [
        asyncio.create_task(_shard_main(net, reply_timeout)) for net in nets
    ]
    try:
        await asyncio.gather(*(net.registered.wait() for net in nets))
        t0 = time.perf_counter()
        await _client_task(client, host, [net.port for net in nets])
        wall = time.perf_counter() - t0
        await asyncio.gather(*shard_tasks)
        await asyncio.gather(*stub_tasks)
    finally:
        for task in (*stub_tasks, *shard_tasks):
            task.cancel()
        for srv in servers:
            srv.close()
            await srv.wait_closed()
    return NetRunResult(
        reports=[sh.report for sh in shards],
        shards=shards,
        client=client,
        metrics=_metrics(
            "sockets", shards, client, wall,
            queue_limit=queue_limit,
            peak_submit_queue=max(n.peak_submit_queue for n in nets),
            stale_timeouts=sum(n.stale_timeouts for n in nets),
            suspect_shards=sum(1 for n in nets if n.suspect),
        ),
    )
