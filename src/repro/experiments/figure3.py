"""Figure 3 — effect of speed skewness (Section 5.1).

18 computers: 2 fast + 16 slow (speed 1).  The fast speed sweeps 1 → 20,
from homogeneous to highly skewed, at 70% utilization.  Panels: (a) mean
response time, (b) mean response ratio, (c) fairness, for the five
algorithms.

Expected shape (paper): optimized-allocation policies (ORR, ORAN) pull
away from weighted ones (WRR, WRAN) as skew grows — at 20:1 ORR beats
WRR by ~42% and ORAN beats WRAN by ~49% in mean response ratio — and
approach Dynamic Least-Load; near homogeneity the dispatcher dominates
(WRR beats ORAN), at high skew the allocator does (ORAN beats WRR).
"""

from __future__ import annotations

from ..core import PAPER_POLICIES
from .base import Scale, SweepResult, active_scale, run_policy_sweep
from .configs import skewness_config
from .plotting import sweep_ratio_chart
from .reporting import format_sweep

__all__ = ["FAST_SPEEDS", "run_figure3", "format_figure3"]

FAST_SPEEDS: tuple[float, ...] = (1.0, 2.0, 4.0, 6.0, 10.0, 14.0, 20.0)
UTILIZATION = 0.70
METRICS = ("mean_response_time", "mean_response_ratio", "fairness")


def run_figure3(
    scale: str | Scale | None = None,
    *,
    fast_speeds=FAST_SPEEDS,
    policies=PAPER_POLICIES,
    n_jobs=None,
    cache=None,
    **grid,
) -> SweepResult:
    """Regenerate the three panels of Figure 3."""
    scale = active_scale(scale)
    return run_policy_sweep(
        experiment_id="figure3",
        title="effect of speed skewness (2 fast + 16 slow, rho=0.7)",
        x_label="fast speed",
        x_values=fast_speeds,
        config_for_x=lambda x: skewness_config(x, UTILIZATION),
        policies=policies,
        scale=scale,
        n_jobs=n_jobs,
        cache=cache,
        **grid,
    )


def format_figure3(result: SweepResult) -> str:
    """All three panels as tables, plus an ASCII chart of panel (b)."""
    tables = "\n\n".join(format_sweep(result, metric) for metric in METRICS)
    return tables + "\n\n" + sweep_ratio_chart(result)

