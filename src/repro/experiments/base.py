"""Shared experiment infrastructure: scales, sweeps, result containers.

Every experiment runner regenerates one table or figure of the paper.
Runs are parameterized by a :class:`Scale`:

* ``smoke`` — seconds-long runs for CI and unit tests;
* ``quick`` — minutes-long runs whose *shape* already matches the paper
  (default for the benchmark harness);
* ``paper`` — the full Section 4.1 protocol (4.0e6 simulated seconds,
  10 replications) for faithful regeneration.

Select via the ``REPRO_SCALE`` environment variable or pass a scale
explicitly.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..core import PolicyEvaluation, get_policy
from ..obs import counters as obs_counters
from ..core.cache import ReplicationCache, default_cache
from ..core.executor import (
    CellTask,
    ReplicationTask,
    run_cell_grid,
    run_replication_grid,
    summarize_outcomes,
)
from ..rng import replication_seeds
from ..sim import SimulationConfig

__all__ = ["Scale", "SCALES", "active_scale", "SweepResult", "run_policy_sweep"]

logger = logging.getLogger("repro.sweep")


@dataclass(frozen=True)
class Scale:
    """Run-length preset (simulated seconds, replication count)."""

    name: str
    duration: float
    replications: int
    base_seed: int = 2000  # ICPP 2000 vintage

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.replications < 1:
            raise ValueError(
                f"replications must be at least 1, got {self.replications}"
            )

    @property
    def warmup(self) -> float:
        """A quarter of the run, like the paper."""
        return 0.25 * self.duration

    def with_replications(self, replications: int) -> "Scale":
        return replace(self, replications=replications)


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", duration=2.0e4, replications=2),
    "quick": Scale("quick", duration=1.5e5, replications=3),
    "paper": Scale("paper", duration=4.0e6, replications=10),
}


def active_scale(override: str | Scale | None = None) -> Scale:
    """Resolve the scale: explicit arg > ``REPRO_SCALE`` env > quick."""
    if isinstance(override, Scale):
        return override
    name = override or os.environ.get("REPRO_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; expected one of {sorted(SCALES)}"
        ) from None


@dataclass
class SweepResult:
    """Evaluations for (x value × policy), the shape of Figures 3–6.

    ``cells[x][policy]`` is a :class:`PolicyEvaluation`.
    """

    experiment_id: str
    title: str
    x_label: str
    x_values: list[float]
    policies: list[str]
    scale: Scale
    cells: dict[float, dict[str, PolicyEvaluation]] = field(default_factory=dict)
    #: Replications served from / missed in the persistent cache (both
    #: zero when the sweep ran without a cache).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Cells served from a sweep checkpoint (``repro run --resume``).
    checkpoint_hits: int = 0
    #: Structured reports for quarantined cells (empty unless the grid
    #: ran with ``quarantine=True`` and something actually failed).
    failures: list = field(default_factory=list)
    #: Per-stage wall-clock seconds ("plan", "cache_lookup", "simulate",
    #: "aggregate") recorded by the grid executor.
    timings: dict[str, float] = field(default_factory=dict)
    #: Run-level counter delta accumulated over this sweep (job ledger,
    #: cache and kernel engagement, stream-pool reuse) — worker-process
    #: tallies included, see :mod:`repro.obs.counters`.
    counters: dict[str, float] = field(default_factory=dict)

    def series(self, policy: str, metric: str) -> np.ndarray:
        """Metric means across the sweep for one policy (a figure line)."""
        if policy not in self.policies:
            raise KeyError(f"unknown policy {policy!r}; have {self.policies}")
        return np.asarray(
            [self.cells[x][policy].metric(metric).mean for x in self.x_values]
        )

    def improvement(self, better: str, worse: str, metric: str) -> np.ndarray:
        """Relative gain of *better* over *worse*: 1 − better/worse.

        The paper's "ORR outperforms WRR by 42%" statements are this
        quantity on mean response ratio.
        """
        b = self.series(better, metric)
        w = self.series(worse, metric)
        return 1.0 - b / w


def run_policy_sweep(
    experiment_id: str,
    title: str,
    x_label: str,
    x_values,
    config_for_x,
    policies,
    scale: Scale,
    *,
    estimation_errors: dict[str, float] | None = None,
    n_jobs: int | str | None = None,
    cache: ReplicationCache | None = None,
    faults=None,
    retries: int = 0,
    task_timeout: float | None = None,
    quarantine: bool = False,
    checkpoint=None,
    cell_batch: bool | None = None,
) -> SweepResult:
    """Evaluate each policy at each sweep point.

    By default the sweep runs **cell-batched**: each sweep point becomes
    one :class:`~repro.core.executor.CellTask` whose replications share
    materialized arrival/size streams across every policy (common random
    numbers make the draws identical, so sampling once per replication
    is free speedup).  Hardening knobs (``retries``, ``task_timeout``,
    ``quarantine``) are only offered by the flat per-replication grid,
    so requesting any of them routes the sweep there instead.  Both
    paths share task keys and cache entries and are bit-identical for
    the same seeds — same per-replication streams, order-insensitive
    aggregation.

    Parameters
    ----------
    config_for_x:
        Callable mapping an x value to a :class:`SimulationConfig`
        *without* duration/warmup — the scale fills those in.
    estimation_errors:
        Optional map of policy-name → relative ρ estimation error
        (Figure 6's ORR(±e%) variants).
    n_jobs:
        Worker processes (int or ``"auto"``); default is the
        ``REPRO_JOBS`` environment variable, falling back to 1.
    cache:
        Persistent replication cache; defaults to the directory named
        by the ``REPRO_CACHE`` environment variable (no caching when
        unset).  Completed replications are reused, so re-running a
        figure at the same scale — or resuming an interrupted sweep —
        skips finished work.
    faults:
        Optional :class:`~repro.faults.FaultConfig` injected into every
        sweep point's configuration (unless the point's own config
        already carries one — fault experiments set it per point).
    retries / task_timeout / quarantine / checkpoint:
        Harness hardening, forwarded to
        :func:`~repro.core.executor.run_replication_grid`: bounded
        retries for crashed or timed-out replications, per-task
        wall-clock budget, structured quarantine instead of an
        aggregate abort, and a :class:`~repro.core.checkpoint.SweepCheckpoint`
        so ``repro run --resume`` skips finished cells.
    cell_batch:
        ``None`` (default) batches whole cells whenever no hardening
        knob is in play; ``False`` forces the flat per-replication
        grid; ``True`` insists on cell batching and raises if a
        hardening knob was also requested.
    """
    hardened = retries != 0 or task_timeout is not None or quarantine
    if cell_batch is True and hardened:
        raise ValueError(
            "cell_batch=True is incompatible with retries/task_timeout/"
            "quarantine; the hardened path runs per-replication tasks"
        )
    use_cells = cell_batch if cell_batch is not None else not hardened
    x_values = [float(x) for x in x_values]
    result = SweepResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        x_values=x_values,
        policies=list(policies),
        scale=scale,
    )
    errors = estimation_errors or {}
    if cache is None:
        cache = default_cache()
    counters_before = obs_counters.snapshot()

    # Plan: flatten the sweep into one replication grid.
    t_plan = time.perf_counter()
    seeds = replication_seeds(scale.base_seed, scale.replications)
    display: dict[str, str] = {}
    configs: dict[float, SimulationConfig] = {}
    tasks: list[ReplicationTask] = []
    cell_tasks: list[CellTask] = []
    for x in x_values:
        base = config_for_x(x)
        config = SimulationConfig(
            speeds=base.speeds,
            utilization=base.utilization,
            duration=scale.duration,
            warmup=scale.warmup,
            size_distribution=base.size_distribution,
            arrival_cv=base.arrival_cv,
            discipline=base.discipline,
            quantum=base.quantum,
            drain=base.drain,
            feedback=base.feedback,
            rate_profile=base.rate_profile,
            faults=base.faults if base.faults is not None else faults,
        )
        configs[x] = config
        base_names = []
        cell_errors = []
        for name in policies:
            base_name = name.split("(")[0]
            err = errors.get(name)
            base_names.append(base_name)
            cell_errors.append(err)
            # Resolve up front: fail fast and fix the display name.
            display[name] = get_policy(base_name, estimation_error=err).name
            if not use_cells:
                for r, seed in enumerate(seeds):
                    tasks.append(
                        ReplicationTask(
                            key=(x, name, r),
                            config=config,
                            policy_name=base_name,
                            estimation_error=err,
                            seed=seed,
                        )
                    )
        if use_cells:
            cell_tasks.append(
                CellTask(
                    x=x,
                    config=config,
                    policy_names=tuple(policies),
                    base_names=tuple(base_names),
                    estimation_errors=tuple(cell_errors),
                    seeds=tuple(seeds),
                )
            )
    plan_s = time.perf_counter() - t_plan

    if use_cells:
        report = run_cell_grid(
            cell_tasks,
            n_jobs=n_jobs,
            cache=cache,
            checkpoint=checkpoint,
        )
    else:
        report = run_replication_grid(
            tasks,
            n_jobs=n_jobs,
            cache=cache,
            retries=retries,
            task_timeout=task_timeout,
            quarantine=quarantine,
            checkpoint=checkpoint,
        )

    # Aggregate in (x, policy, seed) order — completion order never
    # matters, so parallel and serial sweeps summarize identically.
    t_agg = time.perf_counter()
    for x in x_values:
        row: dict[str, PolicyEvaluation] = {}
        for name in policies:
            outcomes = [
                report.outcomes[(x, name, r)]
                for r in range(scale.replications)
                if (x, name, r) in report.outcomes
            ]
            if not outcomes:
                continue  # every replication quarantined: no cell
            row[name] = summarize_outcomes(display[name], configs[x], outcomes)
        result.cells[x] = row

    result.cache_hits = report.cache_hits
    result.cache_misses = report.cache_misses
    result.checkpoint_hits = report.checkpoint_hits
    result.failures = list(report.failures)
    result.timings = {
        "plan": plan_s,
        **report.timings,
        "aggregate": time.perf_counter() - t_agg,
    }
    result.counters = obs_counters.diff_since(counters_before)
    if cache is not None:
        logger.info(
            "%s: replication cache %d hits / %d misses",
            experiment_id,
            report.cache_hits,
            report.cache_misses,
        )
    return result
