"""Figure 5 — effect of system load (Section 5.3).

The Table 3 base configuration (15 computers, aggregate speed 44) swept
over utilization 0.3 → 0.9.  Panels: (a) mean response ratio,
(b) fairness.

Expected shape (paper): ORR is the best static policy at every load;
at low/moderate load the optimized policies sit close to Least-Load;
at 90% load ORR's mean response ratio is ~24% below WRR and ~34% below
WRAN; the Least-Load advantage and the round-robin-vs-random gap both
grow with load.
"""

from __future__ import annotations

from ..core import PAPER_POLICIES
from .base import Scale, SweepResult, active_scale, run_policy_sweep
from .configs import base_config
from .plotting import sweep_ratio_chart
from .reporting import format_sweep

__all__ = ["UTILIZATIONS", "run_figure5", "format_figure5"]

UTILIZATIONS: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
METRICS = ("mean_response_ratio", "fairness")


def run_figure5(
    scale: str | Scale | None = None,
    *,
    utilizations=UTILIZATIONS,
    policies=PAPER_POLICIES,
    n_jobs=None,
    cache=None,
    **grid,
) -> SweepResult:
    """Regenerate the two panels of Figure 5.

    Heavy-load points (ρ ≥ 0.8) have high run-to-run variance under the
    bursty heavy-tailed workload, so the quick preset is boosted to 8
    replications (the paper itself uses 10).
    """
    scale = active_scale(scale)
    if scale.name == "quick":
        scale = scale.with_replications(max(scale.replications, 8))
    return run_policy_sweep(
        experiment_id="figure5",
        title="effect of system load (base configuration, Table 3)",
        x_label="utilization",
        x_values=utilizations,
        config_for_x=lambda x: base_config(x),
        policies=policies,
        scale=scale,
        n_jobs=n_jobs,
        cache=cache,
        **grid,
    )


def format_figure5(result: SweepResult) -> str:
    tables = "\n\n".join(format_sweep(result, metric) for metric in METRICS)
    return tables + "\n\n" + sweep_ratio_chart(result)

