"""ASCII line plots for figure series (terminal-friendly regeneration).

The paper's figures are line charts; :func:`ascii_plot` renders the same
series as a character grid so ``repro-sched run figure5`` output can be
eyeballed for crossovers and trends without leaving the terminal.  Not a
plotting library — a readability aid for the reproduction tables.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["ascii_plot", "sweep_ratio_chart"]

#: Marker characters assigned to series in order.
_MARKERS = "ox*+#@%&"


def ascii_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render several y-series over shared x values as an ASCII chart.

    Points are nearest-cell rasterized; later series overwrite earlier
    ones where they collide.  A legend maps markers to series names.
    """
    xs = np.asarray(x_values, dtype=float)
    if xs.ndim != 1 or xs.size < 2:
        raise ValueError("need at least two x values")
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")
    if width < 16 or height < 4:
        raise ValueError("grid too small: need width >= 16, height >= 4")

    ys = {}
    for name, values in series.items():
        arr = np.asarray(values, dtype=float)
        if arr.shape != xs.shape:
            raise ValueError(
                f"series {name!r} has {arr.size} points for {xs.size} x values"
            )
        ys[name] = arr

    all_y = np.concatenate(list(ys.values()))
    if not np.all(np.isfinite(all_y)):
        raise ValueError("series contain non-finite values")
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0  # flat series: give the band some height
    x_min, x_max = float(xs.min()), float(xs.max())

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def row(y: float) -> int:
        # Row 0 is the top of the chart.
        return (height - 1) - round((y - y_min) / (y_max - y_min) * (height - 1))

    for marker, (name, arr) in zip(_MARKERS, ys.items()):
        for x, y in zip(xs, arr):
            grid[row(float(y))][col(float(x))] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    label_width = max(len(top_label), len(bottom_label))
    for r, cells in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(cells)}|")
    axis = f"{' ' * label_width} +{'-' * width}+"
    lines.append(axis)
    lines.append(
        f"{' ' * label_width}  {str(x_min):<{width // 2}}{x_max:>{width // 2}.6g}"
    )
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, ys)
    )
    lines.append(f"{y_label} vs {x_label}:   {legend}")
    return "\n".join(lines)

def sweep_ratio_chart(result) -> str:
    """ASCII chart of a SweepResult's mean-response-ratio panel."""
    return ascii_plot(
        result.x_values,
        {p: result.series(p, "mean_response_ratio") for p in result.policies},
        x_label=result.x_label,
        y_label="mean response ratio",
        title=f"{result.experiment_id}: mean response ratio (lower is better)",
    )
