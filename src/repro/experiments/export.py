"""Structured export of experiment results (JSON / CSV).

Sweep results carry everything needed to re-plot the paper's figures in
any external tool; these helpers serialize them losslessly (means, CI
half-widths, replication counts) instead of the printable tables.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .base import SweepResult

__all__ = ["sweep_to_dict", "save_sweep_json", "save_sweep_csv"]

_METRICS = ("mean_response_time", "mean_response_ratio", "fairness")


def _cell_metrics(evaluation) -> tuple[str, ...]:
    """The paper's metrics, plus loss_rate on fault-injection sweeps."""
    if evaluation.loss_rate is not None:
        return _METRICS + ("loss_rate",)
    return _METRICS


def sweep_to_dict(result: SweepResult) -> dict:
    """Lossless JSON-ready representation of a sweep."""
    points = []
    for x in result.x_values:
        row = {"x": x, "policies": {}}
        for policy in result.policies:
            if policy not in result.cells[x]:
                continue  # every replication of this cell quarantined
            evaluation = result.cells[x][policy]
            row["policies"][policy] = {
                metric: {
                    "mean": evaluation.metric(metric).mean,
                    "half_width": evaluation.metric(metric).half_width,
                    "n": evaluation.metric(metric).n,
                }
                for metric in _cell_metrics(evaluation)
            }
        points.append(row)
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "x_label": result.x_label,
        "scale": {
            "name": result.scale.name,
            "duration": result.scale.duration,
            "replications": result.scale.replications,
        },
        "policies": list(result.policies),
        "points": points,
    }


def save_sweep_json(result: SweepResult, path: str | Path) -> Path:
    """Write the sweep as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(sweep_to_dict(result), indent=2) + "\n")
    return path


def save_sweep_csv(result: SweepResult, path: str | Path) -> Path:
    """Write the sweep as a flat CSV: one row per (x, policy, metric)."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [result.x_label, "policy", "metric", "mean", "half_width", "n"]
        )
        for x in result.x_values:
            for policy in result.policies:
                if policy not in result.cells[x]:
                    continue  # quarantined cell
                evaluation = result.cells[x][policy]
                for metric in _cell_metrics(evaluation):
                    summary = evaluation.metric(metric)
                    writer.writerow(
                        [x, policy, metric, repr(summary.mean),
                         repr(summary.half_width), summary.n]
                    )
    return path


def load_sweep_json(path: str | Path) -> dict:
    """Read back a sweep JSON (plain dict; no SweepResult round-trip)."""
    return json.loads(Path(path).read_text())
