"""Figure 2 — allocation deviation: round-robin vs random dispatching.

Eight computers with fixed workload fractions (0.35, 0.22, 0.15, 0.12,
0.04 × 4), hyperexponential arrivals with mean inter-arrival 2.2 s, and
30 consecutive 120 s observation intervals.  The paper plots the
workload allocation deviation Σ(αᵢ − α'ᵢ)² per interval for both
dispatchers: round robin's curve sits far below random's and barely
fluctuates.

Only the dispatcher matters here (no service model), so the runner
samples the arrival process, feeds it through both dispatchers, and
computes the per-interval deviation series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dispatch import (
    DeviationSeries,
    RandomDispatcher,
    RoundRobinDispatcher,
    interval_deviations,
)
from ..distributions import Hyperexponential
from ..rng import StreamFactory
from .base import Scale, active_scale
from .configs import FIGURE2_FRACTIONS, FIGURE2_MEAN_INTERARRIVAL
from .reporting import format_series_dict

__all__ = ["Figure2Result", "run_figure2"]

N_INTERVALS = 30
INTERVAL_LENGTH = 120.0
ARRIVAL_CV = 3.0


@dataclass(frozen=True)
class Figure2Result:
    intervals: np.ndarray
    round_robin: DeviationSeries
    random: DeviationSeries
    scale: Scale

    @property
    def mean_ratio(self) -> float:
        """random mean deviation / round-robin mean deviation (≫ 1)."""
        return self.random.mean / max(self.round_robin.mean, 1e-300)

    def format(self) -> str:
        table = format_series_dict(
            "interval",
            [float(i + 1) for i in self.intervals],
            {
                "round-robin deviation": self.round_robin.deviations,
                "random deviation": self.random.deviations,
            },
            title=(
                "Figure 2: workload allocation deviation per 120 s interval "
                f"[{self.scale.name} scale]"
            ),
        )
        summary = (
            f"\nmean deviation: round-robin={self.round_robin.mean:.3g}, "
            f"random={self.random.mean:.3g} (ratio {self.mean_ratio:.1f}x); "
            f"fluctuation (std): round-robin={self.round_robin.std:.3g}, "
            f"random={self.random.std:.3g}"
        )
        return table + summary


def run_figure2(scale: str | Scale | None = None, *, seed: int | None = None) -> Figure2Result:
    """Regenerate Figure 2's deviation comparison.

    The scale only selects the seed default; the horizon is fixed by the
    figure itself (30 × 120 s).
    """
    scale = active_scale(scale)
    streams = StreamFactory(seed if seed is not None else scale.base_seed)
    alphas = np.asarray(FIGURE2_FRACTIONS)

    interarrival = Hyperexponential.from_mean_cv(FIGURE2_MEAN_INTERARRIVAL, ARRIVAL_CV)
    horizon = N_INTERVALS * INTERVAL_LENGTH
    gaps: list[float] = []
    total = 0.0
    rng = streams.arrivals
    while total < horizon:
        chunk = np.asarray(interarrival.sample(rng, 4096), dtype=float)
        gaps.append(chunk)
        total += float(chunk.sum())
    times = np.cumsum(np.concatenate(gaps))
    times = times[times <= horizon]

    sizes = np.ones_like(times)  # dispatch decisions ignore size here

    rr = RoundRobinDispatcher()
    rr.reset(alphas)
    rr_targets = rr.select_batch(sizes)

    rand = RandomDispatcher(streams.dispatch)
    rand.reset(alphas)
    rand_targets = rand.select_batch(sizes)

    rr_series = interval_deviations(
        alphas, times, rr_targets, INTERVAL_LENGTH, N_INTERVALS
    )
    rand_series = interval_deviations(
        alphas, times, rand_targets, INTERVAL_LENGTH, N_INTERVALS
    )
    return Figure2Result(
        intervals=np.arange(N_INTERVALS),
        round_robin=rr_series,
        random=rand_series,
        scale=scale,
    )
