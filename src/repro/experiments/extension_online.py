"""Extension experiment: quasi-static service vs oracle static ORR.

Section 5.4 argues the static allocation is insensitive to moderate
parameter error, so recomputing it rarely should cost little.  This
experiment quantifies that claim for the online service: a
:class:`~repro.service.SchedulerService` estimates (λ, m, s) from the
live stream and re-solves Theorems 1–3 every *control period*, and we
sweep that period against

* a **stationary** workload (constant ρ) — the service should match the
  clairvoyant static ORR allocation to within estimator noise; and
* a **step** workload (λ doubles mid-run) — the service must *track*,
  and the re-solve period bounds how long it dispatches under a stale
  allocation.

Common random numbers: each replication draws one job trace per
workload and feeds the *same* trace to every control period and to the
oracle, so all MRT differences are attributable to the control policy.
Reported per (workload, period):

* time-averaged service MRT over the run, and its ratio to the oracle
  static ORR replay of the same trace (oracle = Algorithm 1 on the
  true parameters; for the step workload the oracle re-solves exactly
  at the step — the best any quasi-static scheme could do);
* mean allocation tracking error — time-averaged L∞ distance between
  the service's live allocation and the instantaneous true-parameter
  oracle;
* recovery time after the step, in control periods, until the live
  allocation is within 0.05 (L∞) of the new oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..allocation.optimized import optimized_fractions
from ..dispatch.round_robin import RoundRobinDispatcher
from ..distributions import distribution_from_mean_cv
from ..queueing.network import HeterogeneousNetwork
from ..service import (
    SchedulerService,
    ServerBank,
    ServiceConfig,
    SyntheticJobSource,
    TraceJobSource,
)
from ..sim.arrivals import Workload
from ..sim.modulated import step_profile
from .base import Scale, active_scale
from .reporting import format_table

__all__ = ["OnlineCell", "OnlineResult", "run_online_extension"]

SPEEDS = (1.0, 2.0, 3.0)
BASE_UTILIZATION = 0.35
STEP_FACTOR = 2.0
#: Control periods swept (simulated seconds between re-solves).
CONTROL_PERIODS = (50.0, 100.0, 400.0)
#: Recovery criterion: L∞ distance to the new oracle allocation.
RECOVERY_TOLERANCE = 0.05
#: The per-job estimator loop runs in Python; the full offline horizons
#: would take minutes for no statistical gain, so the service horizon is
#: a capped slice of the scale's duration.
MAX_DURATION = 2.4e4


@dataclass(frozen=True)
class OnlineCell:
    """Aggregates for one (workload, control period) combination."""

    workload: str
    control_period: float
    service_mrt: float
    oracle_mrt: float
    tracking_error: float
    recovery_periods: float  # NaN for the stationary workload
    swaps: float
    shed: float

    @property
    def mrt_ratio(self) -> float:
        return self.service_mrt / self.oracle_mrt


@dataclass(frozen=True)
class OnlineResult:
    cells: tuple[OnlineCell, ...]
    scale: Scale
    duration: float
    replications: int

    def cell(self, workload: str, period: float) -> OnlineCell:
        for c in self.cells:
            if c.workload == workload and c.control_period == period:
                return c
        raise KeyError(f"no cell for {workload!r} at period {period}")

    def format(self) -> str:
        rows = [
            [
                c.workload,
                c.control_period,
                c.service_mrt,
                c.oracle_mrt,
                c.mrt_ratio,
                c.tracking_error,
                c.recovery_periods,
                c.swaps,
                c.shed,
            ]
            for c in self.cells
        ]
        return format_table(
            [
                "workload",
                "period",
                "service MRT",
                "oracle MRT",
                "ratio",
                "track err",
                "recovery (periods)",
                "swaps",
                "shed",
            ],
            rows,
            title=(
                "Extension: quasi-static service vs oracle static ORR "
                f"(rho {BASE_UTILIZATION} -> x{STEP_FACTOR} step, "
                f"horizon {self.duration:.0f} s, {self.replications} reps) "
                f"[{self.scale.name} scale]"
            ),
        )


def _make_trace(duration: float, seed: int, profile) -> tuple[np.ndarray, np.ndarray]:
    workload = Workload(
        total_speed=sum(SPEEDS),
        utilization=BASE_UTILIZATION,
        size_distribution=distribution_from_mean_cv(1.0, 1.0),
        arrival_cv=1.0,
        rate_profile=profile,
    )
    return SyntheticJobSource(workload, seed).jobs_until(duration)


def _oracle_mrt(alpha_segments, times, sizes) -> float:
    """Replay the trace under piecewise-static oracle allocations.

    ``alpha_segments`` is [(until_time, alphas), ...]; the dispatch
    sequence restarts at each boundary, mirroring the service's own
    drain-and-switch, so the comparison isolates *estimation* quality.
    """
    bank = ServerBank(SPEEDS)
    responses = []
    lo = 0.0
    for until, alphas in alpha_segments:
        mask = (times >= lo) & (times < until)
        lo = until
        seg_times, seg_sizes = times[mask], sizes[mask]
        if seg_times.size == 0:
            continue
        dispatcher = RoundRobinDispatcher()
        dispatcher.reset(alphas)
        targets = dispatcher.select_batch(seg_sizes)
        departures, _ = bank.replay_window(targets, seg_times, seg_sizes)
        responses.append(departures - seg_times)
    if not responses:
        return float("nan")
    all_resp = np.concatenate(responses)
    return float(all_resp.mean())


def _tracking_error(report, oracle_at) -> float:
    """Job-weighted mean L∞ distance from the instantaneous oracle."""
    num = 0.0
    den = 0
    for w in report.windows:
        target = oracle_at(0.5 * (w.start + w.end))
        num += w.admitted * float(np.max(np.abs(w.alphas - target)))
        den += w.admitted
    return num / den if den else float("nan")


def _recovery_periods(report, step_at, period, oracle_post) -> float:
    """Control periods after the step until within RECOVERY_TOLERANCE."""
    for w in report.windows:
        if w.end <= step_at:
            continue
        if float(np.max(np.abs(w.alphas - oracle_post))) < RECOVERY_TOLERANCE:
            return max(0.0, (w.end - step_at) / period)
    return float("inf")


def run_online_extension(scale: str | Scale | None = None) -> OnlineResult:
    """Sweep the re-solve period on stationary and step workloads."""
    scale = active_scale(scale)
    duration = float(min(scale.duration, MAX_DURATION))
    step_at = 0.5 * duration
    network = HeterogeneousNetwork(np.asarray(SPEEDS), utilization=BASE_UTILIZATION)
    oracle_pre = optimized_fractions(network)
    oracle_post = optimized_fractions(
        network.with_utilization(STEP_FACTOR * BASE_UTILIZATION)
    )

    workloads = {
        "stationary": None,
        "step": step_profile(
            step_time=step_at, factor=STEP_FACTOR, horizon=duration
        ),
    }
    cells = []
    for wl_name, profile in workloads.items():
        if wl_name == "stationary":
            oracle_segments = [(duration, oracle_pre)]

            def oracle_at(t, _pre=oracle_pre):
                return _pre
        else:
            oracle_segments = [(step_at, oracle_pre), (duration, oracle_post)]

            def oracle_at(t, _pre=oracle_pre, _post=oracle_post):
                return _pre if t < step_at else _post

        # CRN: one trace per replication, shared by every period sweep
        # point and by the oracle replay.
        traces = [
            _make_trace(duration, scale.base_seed + r, profile)
            for r in range(scale.replications)
        ]
        oracle_mrts = [
            _oracle_mrt(oracle_segments, times, sizes) for times, sizes in traces
        ]
        for period in CONTROL_PERIODS:
            config = ServiceConfig(
                speeds=SPEEDS, duration=duration, control_period=period
            )
            mrts, errs, recs, swaps, shed = [], [], [], [], []
            for times, sizes in traces:
                report = SchedulerService(
                    config, TraceJobSource(times, sizes)
                ).run()
                mrts.append(report.time_averaged_mrt)
                errs.append(_tracking_error(report, oracle_at))
                swaps.append(report.swaps)
                shed.append(report.jobs_shed)
                if wl_name == "step":
                    recs.append(
                        _recovery_periods(report, step_at, period, oracle_post)
                    )
            cells.append(
                OnlineCell(
                    workload=wl_name,
                    control_period=period,
                    service_mrt=float(np.mean(mrts)),
                    oracle_mrt=float(np.mean(oracle_mrts)),
                    tracking_error=float(np.mean(errs)),
                    recovery_periods=(
                        float(np.mean(recs)) if recs else float("nan")
                    ),
                    swaps=float(np.mean(swaps)),
                    shed=float(np.mean(shed)),
                )
            )
    return OnlineResult(
        cells=tuple(cells),
        scale=scale,
        duration=duration,
        replications=scale.replications,
    )
