"""Table 2 — the algorithm combination matrix (definitional).

Regenerates the dispatching × allocation matrix from the live policy
registry and verifies each cell resolves to the advertised components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..allocation import OptimizedAllocator, WeightedAllocator
from ..core import get_policy
from ..dispatch import RandomDispatcher, RoundRobinDispatcher
from .reporting import format_table

__all__ = ["Table2Result", "run_table2"]

_MATRIX = {
    ("random", "weighted"): "WRAN",
    ("random", "optimized"): "ORAN",
    ("round-robin", "weighted"): "WRR",
    ("round-robin", "optimized"): "ORR",
}

_ALLOCATORS = {"weighted": WeightedAllocator, "optimized": OptimizedAllocator}
_DISPATCHERS = {"random": RandomDispatcher, "round-robin": RoundRobinDispatcher}


@dataclass(frozen=True)
class Table2Result:
    matrix: dict[tuple[str, str], str]

    def format(self) -> str:
        headers = ["dispatching \\ allocation", "weighted", "optimized"]
        rows = [
            ["random", self.matrix[("random", "weighted")],
             self.matrix[("random", "optimized")]],
            ["round-robin", self.matrix[("round-robin", "weighted")],
             self.matrix[("round-robin", "optimized")]],
        ]
        return format_table(
            headers, rows,
            title="Table 2: combinations of job dispatching and workload allocation",
        )


def run_table2() -> Table2Result:
    """Verify the registry realizes the paper's matrix and return it."""
    rng = np.random.default_rng(0)
    for (dispatch_kind, alloc_kind), name in _MATRIX.items():
        policy = get_policy(name)
        if not isinstance(policy.allocator, _ALLOCATORS[alloc_kind]):
            raise AssertionError(
                f"{name} should use {alloc_kind} allocation, got "
                f"{type(policy.allocator).__name__}"
            )
        dispatcher = policy.build_dispatcher(np.ones(2), rng)
        if not isinstance(dispatcher, _DISPATCHERS[dispatch_kind]):
            raise AssertionError(
                f"{name} should use {dispatch_kind} dispatching, got "
                f"{type(dispatcher).__name__}"
            )
    return Table2Result(matrix=dict(_MATRIX))
