"""System configurations used by the paper's evaluation (Section 5).

* Table 1's seven-computer system (speeds 1, 1.5, 2, 3, 5, 9, 10).
* Figure 2's eight computers with fixed fractions.
* Figure 3's two-class system: 2 fast + 16 slow, fast speed swept 1→20.
* Figure 4's half-fast/half-slow systems of size 2→20.
* Table 3's base configuration: 15 computers, aggregate speed 44.
"""

from __future__ import annotations

import numpy as np

from ..sim import SimulationConfig

__all__ = [
    "TABLE1_SPEEDS",
    "FIGURE2_FRACTIONS",
    "FIGURE2_MEAN_INTERARRIVAL",
    "BASE_SPEEDS",
    "base_config",
    "table1_config",
    "skewness_config",
    "size_config",
]

#: Table 1: one computer of each speed.
TABLE1_SPEEDS: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0)

#: Figure 2: eight computers with these fixed workload fractions.
FIGURE2_FRACTIONS: tuple[float, ...] = (0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04)

#: Figure 2: hyperexponential arrivals with this mean inter-arrival time.
FIGURE2_MEAN_INTERARRIVAL = 2.2

#: Table 3: the base system — 15 computers, aggregate speed 44.
BASE_SPEEDS: tuple[float, ...] = (
    (1.0,) * 5 + (1.5,) * 4 + (2.0,) * 3 + (5.0,) + (10.0,) + (12.0,)
)

assert abs(sum(BASE_SPEEDS) - 44.0) < 1e-12, "Table 3 aggregate speed must be 44"
assert len(BASE_SPEEDS) == 15, "Table 3 has 15 computers"


def base_config(utilization: float = 0.7, **overrides) -> SimulationConfig:
    """Table 3's base configuration at the given load level."""
    return SimulationConfig(speeds=BASE_SPEEDS, utilization=utilization, **overrides)


def table1_config(utilization: float = 0.7, **overrides) -> SimulationConfig:
    """Table 1's seven-computer heterogeneous system."""
    return SimulationConfig(speeds=TABLE1_SPEEDS, utilization=utilization, **overrides)


def skewness_config(
    fast_speed: float, utilization: float = 0.7, *,
    n_fast: int = 2, n_slow: int = 16, **overrides
) -> SimulationConfig:
    """Figure 3's system: ``n_fast`` computers of the given speed plus
    ``n_slow`` speed-1 computers (fast speed 1 → homogeneous)."""
    if fast_speed < 1.0:
        raise ValueError(f"fast speed below slow speed 1: {fast_speed}")
    speeds = (float(fast_speed),) * n_fast + (1.0,) * n_slow
    return SimulationConfig(speeds=speeds, utilization=utilization, **overrides)


def size_config(
    n_computers: int, utilization: float = 0.7, *,
    fast_speed: float = 10.0, slow_speed: float = 1.0, **overrides
) -> SimulationConfig:
    """Figure 4's system: n/2 fast (speed 10) + n/2 slow (speed 1)."""
    if n_computers < 2 or n_computers % 2:
        raise ValueError(
            f"Figure 4 systems need an even computer count >= 2, got {n_computers}"
        )
    half = n_computers // 2
    speeds = (float(fast_speed),) * half + (float(slow_speed),) * half
    return SimulationConfig(speeds=speeds, utilization=utilization, **overrides)
