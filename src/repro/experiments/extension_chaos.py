"""Chaos harness: scripted failure scenarios with asserted bounds.

Fault tolerance that is not exercised is folklore, so this experiment
*scripts* the failure modes the serving stack claims to survive and
asserts quantitative recovery bounds on each.  Every scenario is fully
deterministic — scripted event times, seeded arrival streams, no
wall-clock anywhere — so the bounds are exact regression gates, not
statistical hopes.  The CI ``chaos-smoke`` job runs the whole suite;
a violated bound raises ``RuntimeError`` and fails the build.

Scenario schema (also documented in DESIGN.md §10): a
:class:`ChaosScenario` names a seeded workload (``utilization``,
``seed``, fixed 4-server geometry), a scripted fault timeline
(``events`` — (time, kind, server) triples compiled to
:class:`~repro.faults.models.FaultEvent`), optional SLO/retry knobs,
and the bounds to assert:

* ``max_loss_rate`` — ceiling on ``jobs_lost / jobs_offered``;
* detector-to-reallocation lag ≤ 1 control period after every kill
  (the failed server's share is zero in the window the kill lands in);
* steady-state loss 0: no window starting ≥ 2 control periods after
  the last repair loses a job;
* SLO scenarios: shedding engages *only* in windows whose predecessor
  closed with p99 above target (and does engage at least once);
* crash/resume scenario: the resumed report equals the uninterrupted
  run field for field;
* net-kill scenario: a networked server stub is killed over real
  sockets mid-run; the live report must equal the in-process
  simulation byte for byte, and the forced membership resolve must
  hand survivors exactly the failure-aware optimal fractions;
* net-rejoin scenario: the killed stub restarts, re-registers, and is
  folded back into membership at a scripted window boundary — the
  rejoin resolve must restore the full-bank optimal fractions within
  one control period with the rejoined server at its *nominal* speed
  (warm-up guard), no window after the rejoin may lose a job, and the
  live kill+rejoin run must still match the simulation byte for byte.

The harness also cross-checks the ``service.jobs_lost`` /
``service.jobs_retried`` counters against the report's accounting, so
the observability layer is under the same gate as the control loop.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from ..faults.aware import survivor_fractions
from ..faults.models import FaultConfig, FaultEvent, RetryPolicy
from ..net import run_in_process, run_sockets
from ..obs import counters
from ..service import (
    SchedulerService,
    ServiceCheckpoint,
    ServiceConfig,
    ServiceCrash,
    SyntheticJobSource,
)
from ..sim.arrivals import Workload
from .base import Scale
from .reporting import format_table

__all__ = [
    "ChaosScenario",
    "ChaosOutcome",
    "ChaosResult",
    "SCENARIOS",
    "run_chaos_extension",
    "format_chaos_extension",
]

SPEEDS = (1.0, 2.0, 3.0, 2.0)
CONTROL_PERIOD = 100.0


@dataclass(frozen=True)
class ChaosScenario:
    """One scripted failure drill and its asserted bounds."""

    name: str
    description: str
    duration: float
    utilization: float
    seed: int
    #: (time, kind, server) triples; kinds as in :mod:`repro.faults.models`.
    events: tuple[tuple[float, str, int], ...] = ()
    slo_target: float | None = None
    faults: FaultConfig | None = None
    max_loss_rate: float = 0.0
    #: Assert the resume round trip instead of running once.
    crash_resume: bool = False
    #: Run over the networked stack (real sockets vs in-process), with
    #: the ``down`` events scripted as server-stub connection drops.
    net_kill: bool = False
    #: Networked kill *and* repair: ``up`` events script restarted stubs
    #: that re-register for the window containing the event time.
    net_rejoin: bool = False

    def fault_events(self) -> list[FaultEvent]:
        return [FaultEvent(t, kind, srv) for t, kind, srv in self.events]

    def config(self) -> ServiceConfig:
        return ServiceConfig(
            speeds=SPEEDS,
            duration=self.duration,
            control_period=CONTROL_PERIOD,
            slo_target=self.slo_target,
            min_responses_to_shed=10,
            faults=self.faults,
        )

    def source(self) -> SyntheticJobSource:
        workload = Workload(
            total_speed=sum(SPEEDS), utilization=self.utilization
        )
        return SyntheticJobSource(workload, self.seed)


@dataclass
class ChaosOutcome:
    """What one scenario produced, plus any violated bounds."""

    scenario: ChaosScenario
    jobs_offered: int = 0
    jobs_lost: int = 0
    jobs_retried: int = 0
    loss_rate: float = 0.0
    detect_periods: float = float("nan")  # worst kill→reallocation lag
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ChaosResult:
    outcomes: list[ChaosOutcome]

    @property
    def violations(self) -> list[str]:
        return [
            f"{o.scenario.name}: {v}" for o in self.outcomes for v in o.violations
        ]


#: The drill roster.  Geometry is fixed (not scale-dependent) so the
#: asserted bounds are exact regression gates.
SCENARIOS: tuple[ChaosScenario, ...] = (
    ChaosScenario(
        name="kill-repair",
        description="kill the fastest of 4 servers, repair after MTTR=400 s",
        duration=3000.0,
        utilization=0.7,
        seed=11,
        events=((1050.0, "down", 2), (1450.0, "up", 2)),
        faults=FaultConfig(mtbf=None, retry=RetryPolicy(base_delay=5.0)),
        max_loss_rate=0.02,
    ),
    ChaosScenario(
        name="double-kill",
        description="overlapping failures of 2 of 4 servers, staggered repair",
        duration=3200.0,
        utilization=0.6,
        seed=12,
        events=(
            (850.0, "down", 1),
            (1050.0, "down", 3),
            (1650.0, "up", 1),
            (1850.0, "up", 3),
        ),
        faults=FaultConfig(mtbf=None, retry=RetryPolicy(base_delay=5.0)),
        max_loss_rate=0.05,
    ),
    ChaosScenario(
        name="degrade-recover",
        description="fastest server runs at 1/4 speed for 800 s, then recovers",
        duration=3000.0,
        utilization=0.6,
        seed=13,
        events=((800.0, "degrade_start", 2), (1600.0, "degrade_end", 2)),
        faults=FaultConfig(degrade_factor=0.25),
        max_loss_rate=0.0,
    ),
    ChaosScenario(
        name="slo-shed",
        description="overload with a p99 target; shedding must track the SLO",
        duration=3000.0,
        utilization=0.92,
        seed=3,
        slo_target=60.0,
        max_loss_rate=0.0,
    ),
    ChaosScenario(
        name="crash-resume",
        description="crash mid-outage, resume from checkpoint, match exactly",
        duration=3000.0,
        utilization=0.7,
        seed=11,
        events=((1050.0, "down", 2), (1450.0, "up", 2)),
        faults=FaultConfig(mtbf=None, retry=RetryPolicy(base_delay=5.0)),
        max_loss_rate=0.02,
        crash_resume=True,
    ),
    ChaosScenario(
        name="net-kill",
        description="kill a socket server stub mid-run; live must match sim",
        duration=2000.0,
        utilization=0.6,
        seed=21,
        events=((1050.0, "down", 2),),
        max_loss_rate=0.05,
        net_kill=True,
    ),
    ChaosScenario(
        name="net-rejoin",
        description="kill a socket stub, restart it, fold it back in",
        duration=2000.0,
        utilization=0.6,
        seed=23,
        events=((1050.0, "down", 2), (1450.0, "up", 2)),
        max_loss_rate=0.08,
        net_rejoin=True,
    ),
)


def _check_kills(scenario: ChaosScenario, report, outcome: ChaosOutcome) -> None:
    """Detector lag and post-repair steady-state loss bounds."""
    cp = CONTROL_PERIOD
    windows = report.windows
    worst = 0.0
    for t, kind, srv in scenario.events:
        if kind != "down":
            continue
        zeroed = [w for w in windows if w.end > t and w.alphas[srv] == 0.0]
        if not zeroed:
            outcome.violations.append(
                f"server {srv} killed at {t:g} never lost its share"
            )
            continue
        lag = (zeroed[0].end - t) / cp
        worst = max(worst, lag)
        if lag > 1.0:
            outcome.violations.append(
                f"kill at {t:g}: reallocation took {lag:.2f} control periods"
            )
        # Windows span (start, end]; a kill at exactly a boundary is
        # processed by the window that ends there.
        hit = [w for w in windows if w.end >= t]
        if hit and hit[0].reason != "membership":
            outcome.violations.append(
                f"kill at {t:g}: boundary resolve reason {hit[0].reason!r}, "
                "expected 'membership'"
            )
    if any(kind == "down" for _, kind, _ in scenario.events):
        outcome.detect_periods = worst
        last_repair = max(
            (t for t, kind, _ in scenario.events if kind == "up"), default=None
        )
        if last_repair is not None:
            late_lost = sum(
                w.lost for w in windows if w.start >= last_repair + 2 * cp
            )
            if late_lost:
                outcome.violations.append(
                    f"{late_lost} jobs lost after repair steady state"
                )


def _check_degrade(report, outcome: ChaosOutcome) -> None:
    if report.membership_changes:
        outcome.violations.append(
            "degradation must not trip the membership detector"
        )
    windows = report.windows
    head = [w.mean_response_time for w in windows[:5] if w.admitted]
    tail = [w.mean_response_time for w in windows[-5:] if w.admitted]
    if head and tail:
        if float(np.mean(tail)) > 3.0 * float(np.mean(head)):
            outcome.violations.append(
                "mean response time did not recover after the episode "
                f"(head {np.mean(head):.2f} s, tail {np.mean(tail):.2f} s)"
            )


def _check_slo(scenario: ChaosScenario, report, outcome: ChaosOutcome) -> None:
    windows = report.windows
    target = scenario.slo_target
    if windows[0].shed:
        outcome.violations.append("shedding engaged before any p99 estimate")
    spurious = sum(
        1
        for prev, cur in zip(windows, windows[1:])
        if cur.shed and not (math.isfinite(prev.p99) and prev.p99 > target)
    )
    if spurious:
        outcome.violations.append(
            f"{spurious} windows shed without a preceding SLO violation"
        )
    if not any(w.shed for w in windows):
        outcome.violations.append(
            "overload scenario never engaged SLO shedding"
        )
    if not any(
        not cur.shed and math.isfinite(prev.p99) and prev.p99 <= target
        for prev, cur in zip(windows, windows[1:])
    ):
        outcome.violations.append("shedding never disengaged after recovery")


def _run_once(scenario: ChaosScenario, **kwargs):
    return SchedulerService(
        scenario.config(),
        scenario.source(),
        fault_events=scenario.fault_events() or None,
        **kwargs,
    )


def _check_crash_resume(scenario: ChaosScenario, outcome: ChaosOutcome):
    """Kill the run mid-outage, resume, and demand exact equality."""
    baseline = _run_once(scenario).run()
    fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="chaos_ck_")
    os.close(fd)
    try:
        checkpoint = ServiceCheckpoint(path)
        try:
            _run_once(
                scenario, checkpoint=checkpoint, checkpoint_every=3,
                crash_after=11,
            ).run()
            outcome.violations.append("simulated crash did not fire")
            return baseline
        except ServiceCrash:
            pass
        resumed_service = _run_once(scenario, checkpoint=checkpoint)
        state = checkpoint.load_last()
        if state is None:
            outcome.violations.append("no snapshot survived the crash")
            return baseline
        resumed_service.restore(state)
        resumed = resumed_service.run()
        a = json.dumps(baseline.as_dict(), sort_keys=True)
        b = json.dumps(resumed.as_dict(), sort_keys=True)
        if a != b:
            outcome.violations.append(
                "resumed report differs from the uninterrupted run"
            )
        return resumed
    finally:
        os.unlink(path)


def _check_net_kill(scenario: ChaosScenario, outcome: ChaosOutcome):
    """Kill a server stub over real sockets; live must match simulation.

    The scripted ``down`` events become stub crash scripts: a stub dies
    at its first dispatch *after* the window preceding the event, so the
    connection drop — and hence membership detection — lands inside the
    window containing the event time on both transports.
    """
    cp = CONTROL_PERIOD
    kill = {
        srv: int(t // cp) - 1
        for t, kind, srv in scenario.events
        if kind == "down"
    }
    config = scenario.config()
    sim = run_in_process(config, scenario.source(), kill=kill)
    before = counters.snapshot()
    live = asyncio.run(run_sockets(config, scenario.source(), kill=kill))
    delta = counters.diff_since(before)
    report = live.report
    a = json.dumps(sim.report.as_dict(), sort_keys=True)
    b = json.dumps(report.as_dict(), sort_keys=True)
    if a != b:
        outcome.violations.append(
            "live socket report differs from the in-process run"
        )
    # Counter hygiene for the socket leg only (the sim leg above would
    # double every ledger entry in the generic cross-check).
    got = delta.get("service.jobs_lost", 0)
    if int(got) != int(report.jobs_lost):
        outcome.violations.append(
            f"counter service.jobs_lost={got:g} disagrees with "
            f"report value {report.jobs_lost}"
        )
    # The forced membership resolve must hand survivors exactly the
    # failure-aware optimal fractions for the estimate it acted on.
    up = np.ones(len(SPEEDS), dtype=bool)
    for _, kind, srv in scenario.events:
        if kind == "down":
            up[srv] = False
    decision = next(
        (
            d
            for shard in live.decisions
            for d in shard
            if d.reason == "membership" and d.resolved
        ),
        None,
    )
    if decision is None or decision.estimate is None:
        outcome.violations.append(
            "no membership resolve with a usable estimate"
        )
    else:
        expected = survivor_fractions(
            decision.estimate.speeds,
            up,
            min(decision.estimate.utilization, config.rho_cap),
        )
        if expected is None or not np.array_equal(decision.alphas, expected):
            outcome.violations.append(
                "membership resolve alphas are not the failure-aware "
                "optimal survivor fractions"
            )
    return report


def _check_net_rejoin(scenario: ChaosScenario, outcome: ChaosOutcome):
    """Kill a stub, restart it, and assert the repair path end to end.

    ``down`` events script connection drops exactly as in
    :func:`_check_net_kill`; ``up`` events script restarted stubs that
    re-register for the window containing the event time, which the
    orchestrator folds back into membership at that window's boundary.
    Asserted on top of the generic kill bounds: the kill+rejoin run is
    byte-identical between transports, the rejoin resolve restores the
    full-bank failure-aware optimum with the rejoined server at its
    *nominal* speed (the warm-up guard discards the stale pre-crash
    estimate), and no window starting at or after the rejoin boundary
    loses a job.
    """
    cp = CONTROL_PERIOD
    kill = {
        srv: int(t // cp) - 1
        for t, kind, srv in scenario.events
        if kind == "down"
    }
    rejoin = {
        srv: int(t // cp)
        for t, kind, srv in scenario.events
        if kind == "up"
    }
    config = scenario.config()
    sim = run_in_process(config, scenario.source(), kill=kill, rejoin=rejoin)
    before = counters.snapshot()
    live = asyncio.run(
        run_sockets(config, scenario.source(), kill=kill, rejoin=rejoin)
    )
    delta = counters.diff_since(before)
    report = live.report
    a = json.dumps(sim.report.as_dict(), sort_keys=True)
    b = json.dumps(report.as_dict(), sort_keys=True)
    if a != b:
        outcome.violations.append(
            "live kill+rejoin report differs from the in-process run"
        )
    for counter, expected in (
        ("service.jobs_lost", report.jobs_lost),
        ("net.server_down", len(kill)),
        ("net.server_rejoin", len(rejoin)),
    ):
        got = delta.get(counter, 0)
        if int(got) != int(expected):
            outcome.violations.append(
                f"counter {counter}={got:g} disagrees with "
                f"expected value {expected}"
            )
    # The rejoin resolve: first membership decision that hands the
    # repaired server a share again.  It must be the full-bank optimum
    # for the estimate it acted on, with the rejoined server back at
    # nominal speed, and must land within one period of the repair.
    nominal = np.asarray(SPEEDS, dtype=float)
    all_up = np.ones(len(SPEEDS), dtype=bool)
    for t, kind, srv in scenario.events:
        if kind != "up":
            continue
        decision = next(
            (
                d
                for shard in live.decisions
                for d in shard
                if d.reason == "membership" and d.resolved
                and d.alphas[srv] > 0.0
            ),
            None,
        )
        if decision is None or decision.estimate is None:
            outcome.violations.append(
                f"server {srv} rejoined but no membership resolve "
                "restored its share"
            )
            continue
        if float(decision.estimate.speeds[srv]) != float(nominal[srv]):
            outcome.violations.append(
                f"rejoined server {srv} re-entered at speed "
                f"{decision.estimate.speeds[srv]:g}, not its nominal "
                f"{nominal[srv]:g} (warm-up guard broken)"
            )
        expected = survivor_fractions(
            decision.estimate.speeds,
            all_up,
            min(decision.estimate.utilization, config.rho_cap),
        )
        if expected is None or not np.array_equal(decision.alphas, expected):
            outcome.violations.append(
                "rejoin resolve alphas are not the full-bank "
                "failure-aware optimal fractions"
            )
        restored = [
            w for w in report.windows if w.end > t and w.alphas[srv] > 0.0
        ]
        if not restored or (restored[0].end - t) / cp > 1.0:
            outcome.violations.append(
                f"rejoin at {t:g}: share not restored within one "
                "control period"
            )
    boundary = min(w * cp for w in rejoin.values())
    late_lost = sum(w.lost for w in report.windows if w.start >= boundary)
    if late_lost:
        outcome.violations.append(
            f"{late_lost} jobs lost after the rejoin boundary"
        )
    return report


def run_chaos_extension(scale: Scale | str | None = None) -> ChaosResult:
    """Run every scenario; raise ``RuntimeError`` on any violated bound.

    *scale* is accepted for registry uniformity but ignored: the drills
    use fixed short horizons so their bounds stay exact.
    """
    outcomes: list[ChaosOutcome] = []
    for scenario in SCENARIOS:
        outcome = ChaosOutcome(scenario=scenario)
        before = counters.snapshot()
        if scenario.crash_resume:
            report = _check_crash_resume(scenario, outcome)
        elif scenario.net_kill:
            report = _check_net_kill(scenario, outcome)
        elif scenario.net_rejoin:
            report = _check_net_rejoin(scenario, outcome)
        else:
            report = _run_once(scenario).run()
        delta = counters.diff_since(before)
        outcome.jobs_offered = report.jobs_offered
        outcome.jobs_lost = report.jobs_lost
        outcome.jobs_retried = report.jobs_retried
        outcome.loss_rate = report.loss_rate
        if not report.clean_shutdown:
            outcome.violations.append("run did not shut down cleanly")
        if report.loss_rate > scenario.max_loss_rate:
            outcome.violations.append(
                f"loss rate {report.loss_rate:.4f} exceeds bound "
                f"{scenario.max_loss_rate:.4f}"
            )
        _check_kills(scenario, report, outcome)
        if any(kind.startswith("degrade") for _, kind, _ in scenario.events):
            _check_degrade(report, outcome)
        if scenario.slo_target is not None:
            _check_slo(scenario, report, outcome)
        # Counter hygiene: the observability ledger must agree with the
        # report's own accounting (crash-resume and the net scenarios
        # run several services, so only the single-run scenarios are
        # cross-checked here; the net drills check their own socket leg).
        if not (scenario.crash_resume or scenario.net_kill
                or scenario.net_rejoin):
            for counter, expected in (
                ("service.jobs_lost", report.jobs_lost),
                ("service.jobs_retried", report.jobs_retried),
            ):
                got = delta.get(counter, 0)
                if int(got) != int(expected):
                    outcome.violations.append(
                        f"counter {counter}={got:g} disagrees with "
                        f"report value {expected}"
                    )
        outcomes.append(outcome)
    result = ChaosResult(outcomes)
    if result.violations:
        raise RuntimeError(
            "chaos bounds violated:\n"
            + "\n".join(f"  - {v}" for v in result.violations)
        )
    return result


def format_chaos_extension(result: ChaosResult) -> str:
    rows = []
    for o in result.outcomes:
        rows.append(
            [
                o.scenario.name,
                o.jobs_offered,
                o.jobs_lost,
                o.jobs_retried,
                f"{o.loss_rate:.4f}",
                "-" if math.isnan(o.detect_periods)
                else f"{o.detect_periods:.2f}",
                "ok" if o.ok else "FAIL",
            ]
        )
    return format_table(
        ["scenario", "offered", "lost", "retried", "loss rate",
         "detect (periods)", "bounds"],
        rows,
        title="Chaos harness: scripted failure drills, asserted bounds",
    )
