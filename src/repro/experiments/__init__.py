"""Experiment harness: one runner per table and figure of the paper.

See DESIGN.md for the experiment index (workload, parameters, expected
shape) and EXPERIMENTS.md for recorded paper-vs-measured results.
"""

from .base import SCALES, Scale, SweepResult, active_scale, run_policy_sweep
from .configs import (
    BASE_SPEEDS,
    FIGURE2_FRACTIONS,
    TABLE1_SPEEDS,
    base_config,
    size_config,
    skewness_config,
    table1_config,
)
from .export import load_sweep_json, save_sweep_csv, save_sweep_json, sweep_to_dict
from .extension_adaptive import AdaptiveResult, run_adaptive_extension
from .extension_faults import format_faults_extension, run_faults_extension
from .extension_online import OnlineCell, OnlineResult, run_online_extension
from .figure2 import Figure2Result, run_figure2
from .figure3 import format_figure3, run_figure3
from .figure4 import format_figure4, run_figure4
from .figure5 import format_figure5, run_figure5
from .figure6 import format_figure6, run_figure6
from .registry import EXPERIMENTS, experiment_ids, run_experiment
from .reporting import format_series_dict, format_sweep, format_table
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2

__all__ = [
    "Scale",
    "SCALES",
    "active_scale",
    "SweepResult",
    "run_policy_sweep",
    "BASE_SPEEDS",
    "TABLE1_SPEEDS",
    "FIGURE2_FRACTIONS",
    "base_config",
    "table1_config",
    "skewness_config",
    "size_config",
    "run_table1",
    "Table1Result",
    "run_table2",
    "Table2Result",
    "run_figure2",
    "Figure2Result",
    "run_figure3",
    "format_figure3",
    "run_figure4",
    "format_figure4",
    "run_figure5",
    "format_figure5",
    "run_figure6",
    "format_figure6",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
    "format_table",
    "format_sweep",
    "format_series_dict",
    "sweep_to_dict",
    "save_sweep_json",
    "save_sweep_csv",
    "load_sweep_json",
    "run_adaptive_extension",
    "AdaptiveResult",
    "run_faults_extension",
    "format_faults_extension",
    "run_online_extension",
    "OnlineResult",
    "OnlineCell",
]
