"""Figure 6 — sensitivity of ORR to load estimation errors (Section 5.4).

The base configuration swept over true utilization, with ORR computing
its allocation from a misestimated ρ̂ = (1 + e)·ρ:

* panel (a): underestimation, e ∈ {−5%, −10%, −15%};
* panel (b): overestimation, e ∈ {+5%, +10%, +15%}.

WRR and exact ORR are plotted for reference.  Expected shape (paper):
underestimation is benign at light load but can push ORR above WRR (and
toward instability — the fast computers saturate) at heavy load;
overestimation costs almost nothing because it just nudges the
allocation toward the weighted scheme.
"""

from __future__ import annotations

from .base import Scale, SweepResult, active_scale, run_policy_sweep
from .configs import base_config
from .plotting import sweep_ratio_chart
from .reporting import format_sweep

__all__ = [
    "UNDERESTIMATION_ERRORS",
    "OVERESTIMATION_ERRORS",
    "run_figure6",
    "format_figure6",
]

UTILIZATIONS: tuple[float, ...] = (0.3, 0.5, 0.7, 0.8, 0.9)
UNDERESTIMATION_ERRORS: tuple[float, ...] = (-0.05, -0.10, -0.15)
OVERESTIMATION_ERRORS: tuple[float, ...] = (+0.05, +0.10, +0.15)


def _policy_label(error: float) -> str:
    return f"ORR({error:+.0%})"


def run_figure6(
    scale: str | Scale | None = None,
    *,
    errors: tuple[float, ...] | None = None,
    utilizations=UTILIZATIONS,
    panel: str = "both",
    n_jobs=None,
    cache=None,
    **grid,
) -> SweepResult:
    """Regenerate Figure 6.

    ``panel`` selects "under", "over", or "both" error sets; ``errors``
    overrides the set entirely.
    """
    scale = active_scale(scale)
    if scale.name == "quick":
        # Heavy-load sensitivity points are high-variance; see figure5.
        scale = scale.with_replications(max(scale.replications, 8))
    if errors is None:
        if panel == "under":
            errors = UNDERESTIMATION_ERRORS
        elif panel == "over":
            errors = OVERESTIMATION_ERRORS
        elif panel == "both":
            errors = UNDERESTIMATION_ERRORS + OVERESTIMATION_ERRORS
        else:
            raise ValueError(
                f"panel must be 'under', 'over', or 'both', got {panel!r}"
            )
    labels = [_policy_label(e) for e in errors]
    policies = ["WRR", "ORR", *labels]
    return run_policy_sweep(
        experiment_id="figure6",
        title="ORR sensitivity to load estimation error (base configuration)",
        x_label="utilization",
        x_values=utilizations,
        config_for_x=lambda x: base_config(x),
        policies=policies,
        scale=scale,
        estimation_errors=dict(zip(labels, errors)),
        n_jobs=n_jobs,
        cache=cache,
        **grid,
    )


def format_figure6(result: SweepResult) -> str:
    tables = "\n\n".join(
        format_sweep(result, metric)
        for metric in ("mean_response_ratio", "fairness")
    )
    return tables + "\n\n" + sweep_ratio_chart(result)

