"""Plain-text rendering of experiment results (tables and figure series).

The paper's figures are line charts; we regenerate each as an ASCII
table with one row per x value and one column per (policy, metric), the
form the series would be plotted from.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import SweepResult

__all__ = ["format_table", "format_sweep", "format_series_dict"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width text table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers: {row}"
            )
        rendered.append(
            [
                float_fmt.format(c) if isinstance(c, (float, np.floating)) else str(c)
                for c in row
            ]
        )
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rendered)) if rendered else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_sweep(result: SweepResult, metric: str, *, show_ci: bool = False) -> str:
    """One metric of a sweep as a table: x rows × policy columns."""
    headers = [result.x_label] + result.policies
    rows = []
    for x in result.x_values:
        row: list[object] = [x]
        for p in result.policies:
            summary = result.cells[x][p].metric(metric)
            if show_ci:
                row.append(f"{summary.mean:.4g}±{summary.half_width:.2g}")
            else:
                row.append(summary.mean)
        rows.append(row)
    title = f"{result.experiment_id}: {result.title} — {metric} [{result.scale.name} scale]"
    return format_table(headers, rows, title=title)


def format_series_dict(
    x_label: str, x_values: Sequence[float], series: dict[str, Sequence[float]],
    *, title: str | None = None
) -> str:
    """Generic x-vs-several-series table (for non-policy figures)."""
    headers = [x_label] + list(series)
    length = len(x_values)
    for name, values in series.items():
        if len(values) != length:
            raise ValueError(f"series {name!r} has {len(values)} points for {length} x")
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
