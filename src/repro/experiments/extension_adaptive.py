"""Extension experiment: ORR under time-varying (diurnal) load.

Section 5.4 recommends running ORR off a long-run average utilization.
This experiment probes that advice against a day/night cycle whose
instantaneous load swings ±50% around the average:

* during peaks the fixed-ρ̄ allocation behaves exactly like Figure 6's
  *underestimation* case (too skewed → fast machines overloaded), and
  the damage outweighs the trough-time gains — fixed ORR can fall
  behind plain WRR;
* the :class:`~repro.core.adaptive.AdaptiveOrrDispatcher` re-estimates
  ρ from observed offered work each window (still zero inter-computer
  communication) and restores the ORR advantage.

The comparison set also includes capacity-weighted JSQ(2) and Dynamic
Least-Load to place the adaptive scheme on the information spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import PolicyEvaluation, evaluate_policy, get_policy
from ..core.adaptive import AdaptiveOrrDispatcher
from ..core.policies import SchedulingPolicy
from ..sim import SimulationConfig
from ..sim.modulated import diurnal_profile
from .base import Scale, active_scale
from .reporting import format_table

__all__ = ["AdaptiveResult", "run_adaptive_extension"]

MEAN_UTILIZATION = 0.55
PEAK_TO_TROUGH = 3.0
#: 4 slow + 2 fast machines: small enough to run quickly, skewed enough
#: for the allocation to matter.
SPEEDS = (1.0,) * 4 + (8.0,) * 2
#: The contrast needs several load cycles with ~20 estimation windows
#: each; shorter scales are floored up to this horizon.
MIN_DURATION = 1.2e5


@dataclass(frozen=True)
class AdaptiveResult:
    evaluations: dict[str, PolicyEvaluation]
    scale: Scale
    cycle_period: float

    def ratio(self, name: str) -> float:
        return self.evaluations[name].mean_response_ratio.mean

    def format(self) -> str:
        rows = [
            [name, ev.mean_response_ratio.mean, ev.fairness.mean]
            for name, ev in self.evaluations.items()
        ]
        return format_table(
            ["policy", "mean response ratio", "fairness"],
            rows,
            title=(
                "Extension: diurnal load (mean rho="
                f"{MEAN_UTILIZATION}, swing x{PEAK_TO_TROUGH}, "
                f"cycle {self.cycle_period:.0f} s) [{self.scale.name} scale]"
            ),
        )


def run_adaptive_extension(scale: str | Scale | None = None) -> AdaptiveResult:
    """Evaluate fixed vs adaptive ORR (and references) under diurnal load."""
    scale = active_scale(scale)
    duration = max(scale.duration, MIN_DURATION)
    # Three full cycles per run so every replication sees whole days;
    # the estimation window is one profile segment.
    period = duration / 3.0
    segments = 24
    profile = diurnal_profile(
        peak_to_trough=PEAK_TO_TROUGH, period=period, segments=segments
    )
    config = SimulationConfig(
        speeds=SPEEDS,
        utilization=MEAN_UTILIZATION,
        duration=duration,
        warmup=0.25 * duration,
        rate_profile=profile,
    )

    def adaptive_factory(speeds, rng):
        return AdaptiveOrrDispatcher(
            speeds,
            update_interval=period / segments,
            safety_margin=0.05,
            ewma_weight=0.7,
            initial_utilization=MEAN_UTILIZATION,
        )

    policies: dict[str, SchedulingPolicy] = {
        "WRR": get_policy("WRR"),
        "ORR (fixed rho)": get_policy("ORR"),
        "ADAPTIVE_ORR": SchedulingPolicy(
            name="ADAPTIVE_ORR",
            allocator=None,
            dispatcher_factory=adaptive_factory,
            is_static=False,
        ),
        "JSQ2": get_policy("JSQ2"),
        "LEAST_LOAD": get_policy("LEAST_LOAD"),
    }
    evaluations = {
        label: evaluate_policy(
            config, policy, replications=scale.replications,
            base_seed=scale.base_seed,
        )
        for label, policy in policies.items()
    }
    return AdaptiveResult(
        evaluations=evaluations, scale=scale, cycle_period=period
    )
