"""Experiment registry: id → runner, for the CLI and the bench harness."""

from __future__ import annotations

from typing import Callable

from .base import Scale
from .configs import BASE_SPEEDS
from .extension_adaptive import run_adaptive_extension
from .extension_chaos import format_chaos_extension, run_chaos_extension
from .extension_faults import format_faults_extension, run_faults_extension
from .extension_online import run_online_extension
from .figure2 import run_figure2
from .figure3 import format_figure3, run_figure3
from .figure4 import format_figure4, run_figure4
from .figure5 import format_figure5, run_figure5
from .figure6 import format_figure6, run_figure6
from .reporting import format_table
from .table1 import run_table1
from .table2 import run_table2

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]


def _run_table1(scale, n_jobs=None, cache=None, **grid) -> str:
    return run_table1(scale).format()


def _run_table2(scale, n_jobs=None, cache=None, **grid) -> str:
    return run_table2().format()


def _run_table3(scale, n_jobs=None, cache=None, **grid) -> str:
    counts: dict[float, int] = {}
    for s in BASE_SPEEDS:
        counts[s] = counts.get(s, 0) + 1
    rows = [[speed, n] for speed, n in sorted(counts.items())]
    rows.append(["total speed", sum(BASE_SPEEDS)])
    return format_table(
        ["speed", "number"], rows, title="Table 3: base system configuration"
    )


def _run_figure2(scale, n_jobs=None, cache=None, **grid) -> str:
    return run_figure2(scale).format()


def _run_figure3(scale, n_jobs=None, cache=None, **grid) -> str:
    return format_figure3(run_figure3(scale, n_jobs=n_jobs, cache=cache, **grid))


def _run_figure4(scale, n_jobs=None, cache=None, **grid) -> str:
    return format_figure4(run_figure4(scale, n_jobs=n_jobs, cache=cache, **grid))


def _run_figure5(scale, n_jobs=None, cache=None, **grid) -> str:
    return format_figure5(run_figure5(scale, n_jobs=n_jobs, cache=cache, **grid))


def _run_figure6(scale, n_jobs=None, cache=None, **grid) -> str:
    return format_figure6(run_figure6(scale, n_jobs=n_jobs, cache=cache, **grid))


def _run_adaptive(scale, n_jobs=None, cache=None, **grid) -> str:
    return run_adaptive_extension(scale).format()


def _run_online(scale, n_jobs=None, cache=None, **grid) -> str:
    return run_online_extension(scale).format()


def _run_faults(scale, n_jobs=None, cache=None, **grid) -> str:
    return format_faults_extension(
        run_faults_extension(scale, n_jobs=n_jobs, cache=cache, **grid)
    )


def _run_chaos(scale, n_jobs=None, cache=None, **grid) -> str:
    return format_chaos_extension(run_chaos_extension(scale))


#: id → (description, runner returning printable text).  Runners accept
#: (scale, n_jobs=None, cache=None, **grid); sweep-based runners forward
#: the grid hardening/fault knobs, the others ignore them.
EXPERIMENTS: dict[str, tuple[str, Callable[..., str]]] = {
    "table1": ("workload distribution under Dynamic Least-Load", _run_table1),
    "table2": ("algorithm combination matrix", _run_table2),
    "table3": ("base system configuration", _run_table3),
    "figure2": ("allocation deviation: round-robin vs random", _run_figure2),
    "figure3": ("effect of speed skewness", _run_figure3),
    "figure4": ("effect of system size", _run_figure4),
    "figure5": ("effect of system load", _run_figure5),
    "figure6": ("sensitivity to load estimation error", _run_figure6),
    "adaptive": (
        "extension: fixed vs adaptive ORR under diurnal load",
        _run_adaptive,
    ),
    "online": (
        "extension: quasi-static service vs oracle static ORR",
        _run_online,
    ),
    "faults": (
        "extension: failure-aware vs oblivious scheduling under faults",
        _run_faults,
    ),
    "chaos": (
        "extension: chaos drills on the fault-tolerant service "
        "(asserted recovery/loss bounds)",
        _run_chaos,
    ),
}


def experiment_ids() -> tuple[str, ...]:
    return tuple(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    scale: Scale | str | None = None,
    *,
    n_jobs: int | str | None = None,
    cache=None,
    **grid,
) -> str:
    """Run one experiment by id and return its printable report.

    ``n_jobs``, ``cache``, and the grid hardening/fault knobs
    (``faults``, ``retries``, ``task_timeout``, ``quarantine``,
    ``checkpoint``) are forwarded to the sweep-based experiments
    (figures 3–6 and the faults extension); the others run serially
    and ignore them.
    """
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; expected one of {experiment_ids()}"
        ) from None
    return runner(scale, n_jobs=n_jobs, cache=cache, **grid)
