"""Figure 4 — effect of system size (Section 5.2).

Systems of 2 → 20 computers, half fast (speed 10) and half slow
(speed 1), at 70% utilization.  Panels: (a) mean response ratio,
(b) fairness.

Expected shape (paper): ORR maintains a 35–40% mean-response-ratio gain
over WRAN beyond 6 computers; the ORR-vs-Least-Load gap widens with
size (the dynamic policy exploits instantaneous state across more
machines); round-robin dispatch improves with size while random does
not smooth burstiness.
"""

from __future__ import annotations

from ..core import PAPER_POLICIES
from .base import Scale, SweepResult, active_scale, run_policy_sweep
from .configs import size_config
from .plotting import sweep_ratio_chart
from .reporting import format_sweep

__all__ = ["SYSTEM_SIZES", "run_figure4", "format_figure4"]

SYSTEM_SIZES: tuple[int, ...] = (2, 4, 6, 8, 12, 16, 20)
UTILIZATION = 0.70
METRICS = ("mean_response_ratio", "fairness")


def run_figure4(
    scale: str | Scale | None = None,
    *,
    sizes=SYSTEM_SIZES,
    policies=PAPER_POLICIES,
    n_jobs=None,
    cache=None,
    **grid,
) -> SweepResult:
    """Regenerate the two panels of Figure 4."""
    scale = active_scale(scale)
    return run_policy_sweep(
        experiment_id="figure4",
        title="effect of system size (half speed-10, half speed-1, rho=0.7)",
        x_label="computers",
        x_values=sizes,
        config_for_x=lambda x: size_config(int(x), UTILIZATION),
        policies=policies,
        scale=scale,
        n_jobs=n_jobs,
        cache=cache,
        **grid,
    )


def format_figure4(result: SweepResult) -> str:
    tables = "\n\n".join(format_sweep(result, metric) for metric in METRICS)
    return tables + "\n\n" + sweep_ratio_chart(result)

