"""Extension experiment: scheduling under server failures.

The paper's algorithms assume the machine set is fixed.  This
experiment injects a seeded Markov failure/repair process (exponential
MTBF/MTTR per server) and compares the static policies in two modes:

* **oblivious** — the allocation computed for the full machine set
  keeps running; jobs dispatched to a failed server bounce and retry
  with exponential backoff, being lost once the attempts run out;
* **failure-aware** (``FA_ORR``) — the
  :class:`~repro.faults.FailureAwareDispatcher` re-solves the paper's
  Theorem 1–3 allocation over the *surviving* machines on every
  membership change and rebuilds the round-robin sequence.

The x-axis sweeps MTBF from "failures dominate" to "failures are rare"
at a fixed repair time, so availability rises along the sweep.  Expected
shape: obliviously-static ORR loses a roughly availability-proportional
fraction of jobs (its fractions keep routing to down machines until the
retry budget runs out), while FA_ORR's loss rate stays near the
irreducible floor (only jobs caught mid-service die with the server) at
the cost of a modestly higher mean response time — the salvaged jobs
survive with long, backoff-laden response times that oblivious runs
silently drop from the average.  Dynamic Least-Load is naturally
failure-tolerant here only through retries: it still queries dead
servers because its load table has no membership signal.

Runs always use the event engine (fault injection forces it), so this
sweep is slower per simulated second than the fault-free figures.
"""

from __future__ import annotations

from ..faults import FaultConfig
from .base import Scale, SweepResult, active_scale, run_policy_sweep
from .configs import base_config
from .reporting import format_sweep

__all__ = [
    "MTBF_VALUES",
    "MTTR",
    "FAULT_POLICIES",
    "run_faults_extension",
    "format_faults_extension",
]

#: Mean time between failures per server (seconds), spanning frequent
#: to rare relative to the smoke/quick horizons.
MTBF_VALUES: tuple[float, ...] = (500.0, 2000.0, 8000.0)
#: Mean repair time per server (seconds), fixed across the sweep.
MTTR = 200.0
#: A lighter load than the fault-free figures: survivors must be able
#: to absorb a failed machine's share without saturating.
UTILIZATION = 0.55
#: Oblivious statics, the failure-aware wrapper, and the dynamic
#: yardstick.
FAULT_POLICIES: tuple[str, ...] = ("WRAN", "WRR", "ORR", "FA_ORR", "LEAST_LOAD")
METRICS = ("mean_response_time", "loss_rate")


def run_faults_extension(
    scale: str | Scale | None = None,
    *,
    mtbf_values=MTBF_VALUES,
    mttr: float = MTTR,
    policies=FAULT_POLICIES,
    faults: FaultConfig | None = None,
    n_jobs=None,
    cache=None,
    **grid,
) -> SweepResult:
    """Sweep MTBF and evaluate each policy's MRT and job-loss rate.

    ``faults`` overrides the per-point fault model wholesale (the CLI's
    ``--faults`` spec lands here); its ``mtbf`` is replaced by each
    sweep point, everything else — mttr, degradation, retry policy —
    is honoured.
    """
    from dataclasses import replace

    scale = active_scale(scale)
    template = faults if faults is not None else FaultConfig(mtbf=1.0, mttr=mttr)

    def config_for_x(x: float):
        return base_config(UTILIZATION, faults=replace(template, mtbf=float(x)))

    return run_policy_sweep(
        experiment_id="faults",
        title=(
            f"scheduling under failures (mttr={template.mttr:g} s, "
            f"rho={UTILIZATION})"
        ),
        x_label="MTBF [s]",
        x_values=mtbf_values,
        config_for_x=config_for_x,
        policies=policies,
        scale=scale,
        n_jobs=n_jobs,
        cache=cache,
        **grid,
    )


def format_faults_extension(result: SweepResult) -> str:
    """MRT and loss-rate panels as tables, plus a quarantine appendix."""
    tables = "\n\n".join(format_sweep(result, metric) for metric in METRICS)
    if result.failures:
        lines = "\n".join(f"  - {f.describe()}" for f in result.failures)
        tables += f"\n\nquarantined cells ({len(result.failures)}):\n{lines}"
    return tables
