"""Scheduling policies: the paper's Table 2 matrix plus yardsticks.

A *policy* pairs a workload-allocation scheme with a job-dispatching
strategy:

===========  ==================  =====================
policy       allocation          dispatching
===========  ==================  =====================
WRAN         simple weighted     random
ORAN         optimized (Alg. 1)  random
WRR          simple weighted     round robin (Alg. 2)
ORR          optimized (Alg. 1)  round robin (Alg. 2)
LEAST_LOAD   —                   dynamic least load
===========  ==================  =====================

ORR is the paper's headline combination; LEAST_LOAD is the dynamic
upper-bound yardstick.  Extensions beyond the paper's matrix: SITA
(clairvoyant size-interval dispatch) and ORR(±e%) variants with a
misestimated utilization (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..allocation import (
    Allocator,
    MisestimatedOptimizedAllocator,
    OptimizedAllocator,
    WeightedAllocator,
)
from ..dispatch import (
    Dispatcher,
    LeastLoadDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    SitaDispatcher,
)
from ..distributions import paper_job_sizes
from ..queueing.network import HeterogeneousNetwork

__all__ = ["SchedulingPolicy", "get_policy", "policy_names", "PAPER_POLICIES"]


@dataclass(frozen=True)
class SchedulingPolicy:
    """A named (allocator, dispatcher factory) pair.

    ``dispatcher_factory(speeds, rng)`` builds a fresh dispatcher per
    run; random-based dispatchers consume the provided generator so
    replications stay independent and common-random-number comparisons
    stay aligned.
    """

    name: str
    allocator: Allocator | None
    dispatcher_factory: Callable[[np.ndarray, np.random.Generator], Dispatcher]
    is_static: bool = True

    def fractions(self, network: HeterogeneousNetwork) -> np.ndarray | None:
        """The α vector this policy targets, or None (dynamic policy)."""
        if self.allocator is None:
            return None
        return self.allocator.compute(network).alphas

    def build_dispatcher(
        self, speeds, rng: np.random.Generator
    ) -> Dispatcher:
        return self.dispatcher_factory(np.asarray(speeds, dtype=float), rng)


def _wran() -> SchedulingPolicy:
    return SchedulingPolicy(
        name="WRAN",
        allocator=WeightedAllocator(),
        dispatcher_factory=lambda speeds, rng: RandomDispatcher(rng),
    )


def _oran() -> SchedulingPolicy:
    return SchedulingPolicy(
        name="ORAN",
        allocator=OptimizedAllocator(),
        dispatcher_factory=lambda speeds, rng: RandomDispatcher(rng),
    )


def _wrr() -> SchedulingPolicy:
    return SchedulingPolicy(
        name="WRR",
        allocator=WeightedAllocator(),
        dispatcher_factory=lambda speeds, rng: RoundRobinDispatcher(),
    )


def _orr() -> SchedulingPolicy:
    return SchedulingPolicy(
        name="ORR",
        allocator=OptimizedAllocator(),
        dispatcher_factory=lambda speeds, rng: RoundRobinDispatcher(),
    )


def _least_load() -> SchedulingPolicy:
    return SchedulingPolicy(
        name="LEAST_LOAD",
        allocator=None,
        dispatcher_factory=lambda speeds, rng: LeastLoadDispatcher(speeds),
        is_static=False,
    )


def _jsq2() -> SchedulingPolicy:
    # Power-of-two-choices with the same stale feedback as Least-Load:
    # the midpoint of the information spectrum (extension).
    from ..dispatch.jsq import PowerOfDChoicesDispatcher

    return SchedulingPolicy(
        name="JSQ2",
        allocator=None,
        dispatcher_factory=lambda speeds, rng: PowerOfDChoicesDispatcher(
            speeds, d=min(2, len(speeds)), rng=rng
        ),
        is_static=False,
    )


def _adaptive_orr() -> SchedulingPolicy:
    # ORR with periodic utilization re-estimation (extension, §5.4):
    # still static in the paper's sense — no inter-computer messages.
    from .adaptive import AdaptiveOrrDispatcher

    return SchedulingPolicy(
        name="ADAPTIVE_ORR",
        allocator=None,
        dispatcher_factory=lambda speeds, rng: AdaptiveOrrDispatcher(speeds),
        is_static=False,
    )


def _fa_orr() -> SchedulingPolicy:
    # Failure-aware ORR (extension): re-solves Algorithm 1 over the
    # surviving machines whenever the engine reports a membership
    # change.  Without fault injection it is behaviourally ORR.
    from ..faults import FailureAwareDispatcher

    return SchedulingPolicy(
        name="FA_ORR",
        allocator=OptimizedAllocator(),
        dispatcher_factory=lambda speeds, rng: FailureAwareDispatcher(
            RoundRobinDispatcher(), OptimizedAllocator(), speeds
        ),
    )


def _fa_wrr() -> SchedulingPolicy:
    # Failure-aware WRR: capacity-proportional re-allocation baseline.
    from ..faults import FailureAwareDispatcher

    return SchedulingPolicy(
        name="FA_WRR",
        allocator=WeightedAllocator(),
        dispatcher_factory=lambda speeds, rng: FailureAwareDispatcher(
            RoundRobinDispatcher(), WeightedAllocator(), speeds
        ),
    )


def _sita() -> SchedulingPolicy:
    # Clairvoyant extension: weighted work shares split by size bands.
    return SchedulingPolicy(
        name="SITA",
        allocator=WeightedAllocator(),
        dispatcher_factory=lambda speeds, rng: SitaDispatcher(paper_job_sizes(), speeds),
    )


_FACTORIES: dict[str, Callable[[], SchedulingPolicy]] = {
    "WRAN": _wran,
    "ORAN": _oran,
    "WRR": _wrr,
    "ORR": _orr,
    "LEAST_LOAD": _least_load,
    "SITA": _sita,
    "JSQ2": _jsq2,
    "ADAPTIVE_ORR": _adaptive_orr,
    "FA_ORR": _fa_orr,
    "FA_WRR": _fa_wrr,
}

#: The five algorithms of the paper's evaluation (Section 4.2).
PAPER_POLICIES = ("WRAN", "ORAN", "WRR", "ORR", "LEAST_LOAD")


def policy_names() -> tuple[str, ...]:
    """All registered policy names, paper set first."""
    extras = tuple(k for k in _FACTORIES if k not in PAPER_POLICIES)
    return PAPER_POLICIES + extras


def get_policy(name: str, *, estimation_error: float | None = None) -> SchedulingPolicy:
    """Look up a policy by name (case-insensitive).

    ``estimation_error`` applies only to ORR/ORAN: it swaps the
    optimized allocator for the Figure 6 misestimated variant, e.g.
    ``get_policy("ORR", estimation_error=-0.10)`` is the paper's
    ORR(−10%).
    """
    key = name.upper()
    if key not in _FACTORIES:
        raise KeyError(f"unknown policy {name!r}; expected one of {policy_names()}")
    policy = _FACTORIES[key]()
    if estimation_error is None:
        return policy
    if not isinstance(policy.allocator, OptimizedAllocator):
        raise ValueError(
            f"estimation_error only applies to optimized-allocation policies, not {key}"
        )
    allocator = MisestimatedOptimizedAllocator(estimation_error)
    return SchedulingPolicy(
        name=f"{key}({estimation_error:+.0%})",
        allocator=allocator,
        dispatcher_factory=policy.dispatcher_factory,
        is_static=policy.is_static,
    )
