"""Adaptive ORR — periodic re-estimation of the system utilization.

The paper's Section 5.4 establishes two operational facts: (a) a
long-run average utilization suffices to run ORR, and (b) estimates
should be padded *upward* because underestimation is dangerous.  This
extension turns those facts into a controller for workloads whose load
level drifts (e.g. the diurnal cycles of
:mod:`repro.sim.modulated`):

* the scheduler observes only what it already sees — arrival instants
  and job sizes — and accumulates the offered work per estimation
  window;
* at each window boundary it forms ρ̂ = (work arrived)/(capacity ×
  window), smooths it with an EWMA, pads it by a safety margin, and
  recomputes Algorithm 1's fractions;
* dispatching between updates is plain Algorithm 2 round robin on the
  current fractions.

No inter-computer communication is introduced — the controller remains
a *static* scheme in the paper's sense (it never reads remote state),
merely one that refreshes its single input periodically.
"""

from __future__ import annotations

import numpy as np

from ..allocation.optimized import optimized_fractions
from ..allocation.perturbed import clamp_estimated_utilization
from ..dispatch.base import Dispatcher
from ..dispatch.round_robin import RoundRobinDispatcher
from ..queueing.network import HeterogeneousNetwork

__all__ = ["AdaptiveOrrDispatcher"]


class AdaptiveOrrDispatcher(Dispatcher):
    """Round-robin dispatcher with windowed utilization re-estimation.

    Parameters
    ----------
    speeds:
        Relative computer speeds.
    update_interval:
        Seconds between allocation recomputations.  Should be much
        larger than the mean inter-arrival time (the window needs enough
        jobs for a stable estimate) and smaller than the load cycle it
        is meant to track.
    safety_margin:
        Relative pad applied to the estimate (ρ̂ × (1 + margin)) —
        the paper's "conservatively overestimate" advice.
    ewma_weight:
        Weight of the newest window in the exponential smoothing;
        1.0 disables smoothing.
    initial_utilization:
        ρ̂ before the first window completes.
    """

    is_static = False  # needs wall-clock observation → event engine

    def __init__(
        self,
        speeds,
        *,
        update_interval: float = 3600.0,
        safety_margin: float = 0.05,
        ewma_weight: float = 0.5,
        initial_utilization: float = 0.5,
    ):
        super().__init__()
        self.speeds = np.asarray(speeds, dtype=float)
        if self.speeds.ndim != 1 or self.speeds.size == 0:
            raise ValueError("speeds must be a non-empty 1-D vector")
        if np.any(self.speeds <= 0):
            raise ValueError(f"speeds must be positive, got {self.speeds}")
        if update_interval <= 0:
            raise ValueError(f"update_interval must be positive, got {update_interval}")
        if safety_margin < 0:
            raise ValueError(f"safety_margin must be non-negative, got {safety_margin}")
        if not 0.0 < ewma_weight <= 1.0:
            raise ValueError(f"ewma_weight must lie in (0, 1], got {ewma_weight}")
        if not 0.0 < initial_utilization < 1.0:
            raise ValueError(
                f"initial_utilization must lie in (0, 1), got {initial_utilization}"
            )
        self.update_interval = float(update_interval)
        self.safety_margin = float(safety_margin)
        self.ewma_weight = float(ewma_weight)
        self.initial_utilization = float(initial_utilization)
        self.name = f"adaptive_orr({update_interval:g}s,+{safety_margin:.0%})"

        self._inner = RoundRobinDispatcher()
        self._capacity = float(self.speeds.sum())
        self._estimate = self.initial_utilization
        self._window_start = 0.0
        self._window_work = 0.0
        self._pending_size: float | None = None
        self._updates = 0

    @property
    def wants_feedback(self) -> bool:
        return False  # arrival-driven only: still no load messages

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self, alphas=None) -> None:
        """*alphas* is ignored — the controller derives its own fractions."""
        self.alphas = None
        self._estimate = self.initial_utilization
        self._window_start = 0.0
        self._window_work = 0.0
        self._pending_size = None
        self._updates = 0
        self._apply_estimate()

    def _apply_estimate(self) -> None:
        rho_hat = clamp_estimated_utilization(
            self._estimate * (1.0 + self.safety_margin)
        )
        network = HeterogeneousNetwork(self.speeds, utilization=rho_hat)
        fractions = optimized_fractions(network)
        self._inner.reset(fractions)
        self.alphas = fractions

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------

    def observe_arrival(self, now: float) -> None:
        if now - self._window_start >= self.update_interval:
            elapsed = now - self._window_start
            window_rho = self._window_work / (elapsed * self._capacity)
            window_rho = min(max(window_rho, 1e-3), 2.0)  # sane bounds
            w = self.ewma_weight
            self._estimate = (1.0 - w) * self._estimate + w * window_rho
            self._window_start = now
            self._window_work = 0.0
            self._updates += 1
            self._apply_estimate()

    def select(self, size: float) -> int:
        if self.alphas is None:
            raise RuntimeError("reset() must be called before dispatching")
        # The job's size is offered work for the *current* window.
        self._window_work += size
        return self._inner.select(size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def current_estimate(self) -> float:
        """Smoothed ρ̂ (before the safety margin)."""
        return self._estimate

    @property
    def updates_applied(self) -> int:
        return self._updates
