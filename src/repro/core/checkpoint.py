"""Sweep checkpointing: completed replications survive interruption.

A sweep checkpoint is an append-only JSONL file: one line per completed
(point, policy, replication) cell, written as soon as the cell finishes.
Killing a sweep mid-flight loses at most the cells still in workers;
re-running with the same checkpoint path (``repro run --resume``) loads
the file and skips every finished cell before touching the cache or the
worker grid.

The checkpoint differs from :class:`~repro.core.cache.ReplicationCache`
in scope and key: the cache is content-addressed (full config hash,
shared across experiments and sessions), while the checkpoint is keyed
by the sweep's own task keys — ``(x, policy, replication)`` — so it is
only meaningful for the experiment/scale it was written by.  Keep one
checkpoint file per (experiment, scale) pair; the CLI derives
``.repro_checkpoints/<experiment>_<scale>.jsonl`` automatically.

Corrupt or truncated lines (a crash mid-append) are skipped on load —
the affected cell simply recomputes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Hashable

import numpy as np

__all__ = ["SweepCheckpoint"]


def _freeze(value):
    """JSON arrays → tuples, recursively, so keys round-trip hashable."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _encode_key(key: Hashable) -> str:
    """Canonical JSON text for a task key (tuples render as arrays)."""
    return json.dumps(key, separators=(",", ":"))


class SweepCheckpoint:
    """Append-only JSONL store of completed sweep cells."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def load(self) -> dict:
        """Completed cells: task key → outcome tuple.  Missing file or
        corrupt lines are not errors (they just recompute)."""
        done: dict = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return done
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = _freeze(entry["key"])
                o = entry["outcome"]
                done[key] = (
                    float(o["mean_response_time"]),
                    float(o["mean_response_ratio"]),
                    float(o["fairness"]),
                    int(o["jobs"]),
                    np.asarray(o["dispatch_fractions"], dtype=float),
                    float(o.get("loss_rate", 0.0)),
                )
            except (ValueError, KeyError, TypeError):
                continue  # truncated append: recompute that cell
        return done

    def record(self, key: Hashable, outcome) -> None:
        """Append one finished cell and flush it to disk immediately."""
        data = {
            "key": key,
            "outcome": {
                "mean_response_time": float(outcome[0]),
                "mean_response_ratio": float(outcome[1]),
                "fairness": float(outcome[2]),
                "jobs": int(outcome[3]),
                "dispatch_fractions": [float(x) for x in np.asarray(outcome[4])],
                "loss_rate": float(outcome[5]) if len(outcome) > 5 else 0.0,
            },
        }
        line = json.dumps(data, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def __len__(self) -> int:
        return len(self.load())
