"""Grid-parallel replication executor with a shared worker pool.

An entire sweep — every (sweep point × policy × replication) cell of a
figure — flattens into one task list and fans out across worker
processes.  Three properties make this the backbone of every experiment
runner:

* **One pool per process.**  The ``ProcessPoolExecutor`` is created
  lazily on first parallel use and reused across sweep points, figures,
  and :func:`~repro.core.parallel.evaluate_policy_parallel` calls in a
  single CLI invocation — no per-call spin-up churn.  Worker processes
  persist, so per-process memos (the round-robin dispatch-sequence
  cache) stay warm across tasks.
* **Bit-identical results.**  Each replication derives its streams from
  its own seed, workers rebuild policies from registry names, and the
  caller aggregates outcomes keyed by task — never by completion order.
  ``n_jobs=1`` bypasses the pool (and pickling) entirely.
* **Failure isolation.**  A crashing task does not poison the pool: the
  worker captures the traceback per task and the parent raises one
  aggregate :class:`GridTaskError` naming the failed cells.

Hardening knobs (all off by default — the default path is byte-for-byte
the original fast path):

* ``retries`` — transient failures (a task raising, a worker process
  dying, a task timing out) are retried up to N times with a bounded
  exponential backoff before counting as failed.  A worker killed
  mid-task breaks the whole pool; the executor rebuilds it and
  resubmits every in-flight task.
* ``task_timeout`` — wall-clock budget per task (parallel runs only).
  A task past its deadline is treated as crashed: the pool is recycled
  and the task retried or failed.
* ``quarantine`` — tasks that exhaust their retries are quarantined
  into ``GridReport.failures`` as structured :class:`TaskFailure`
  records (naming the sweep point, policy, and replication) instead of
  aborting the whole grid.
* ``checkpoint`` — a :class:`~repro.core.checkpoint.SweepCheckpoint`;
  finished cells are appended as they complete and skipped on re-runs
  (``repro run --resume``).

``n_jobs`` resolution: explicit argument > ``REPRO_JOBS`` environment
variable > 1 (serial).  The string ``"auto"`` maps to ``os.cpu_count()``.
"""

from __future__ import annotations

import atexit
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import numpy as np

from ..metrics import summarize_replications
from ..obs import counters
from ..obs.spans import span
from ..sim import run_cell
from ..sim.config import SimulationConfig
from ..sim.streams import SharedStreamPool, StreamPool, attach_streams
from .cache import ReplicationCache
from .checkpoint import SweepCheckpoint
from .evaluate import PolicyEvaluation, _cell_fast_indices, run_policy_once
from .policies import get_policy

__all__ = [
    "ReplicationTask",
    "CellTask",
    "TaskFailure",
    "GridTaskError",
    "GridReport",
    "resolve_n_jobs",
    "shared_executor",
    "shutdown_shared_executor",
    "run_replication_grid",
    "run_cell_grid",
    "summarize_outcomes",
]

_pool: ProcessPoolExecutor | None = None
_pool_workers = 0

#: Test seam: when set (before workers fork), every worker invocation
#: calls ``_TEST_WORKER_HOOK(task)`` first — fault-injection tests use
#: it to crash or stall specific tasks.  Never set in production.
_TEST_WORKER_HOOK = None

#: Bounded backoff between retry attempts of a failed task (seconds).
_RETRY_BASE_DELAY = 0.05
_RETRY_MAX_DELAY = 2.0

#: Grids at or below this many pending tasks run in-process even when
#: ``n_jobs > 1``: spinning up (or round-tripping) worker processes
#: costs more than a handful of replications, and serial execution is
#: bit-identical anyway.  Applies only to the unhardened path — retries,
#: timeouts, and the test worker hook always get real workers.
_AUTO_SERIAL_TASKS = 4


def resolve_n_jobs(value: int | str | None = None) -> int:
    """Resolve a worker count: arg > ``REPRO_JOBS`` env > 1; 'auto' = cores."""
    if value is None:
        value = os.environ.get("REPRO_JOBS", "1")
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"n_jobs must be a positive integer or 'auto', got {value!r}"
            ) from None
    n = int(value)
    if n < 1:
        raise ValueError(f"n_jobs must be positive, got {n}")
    return n


def shared_executor(n_jobs: int) -> ProcessPoolExecutor:
    """The process-wide worker pool, created lazily on first use.

    Reused while ``n_jobs`` stays the same; a different ``n_jobs``
    drains the old pool and builds a fresh one.
    """
    global _pool, _pool_workers
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    if _pool is None or _pool_workers != n_jobs:
        shutdown_shared_executor()
        _pool = ProcessPoolExecutor(max_workers=n_jobs)
        _pool_workers = n_jobs
    return _pool


def shutdown_shared_executor() -> None:
    """Drain and drop the shared pool (no-op when none exists)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown()
        _pool = None
        _pool_workers = 0


def _rebuild_pool() -> None:
    """Discard a broken/stalled pool without waiting on stuck workers."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_workers = 0
        counters.inc("executor.pool_rebuilds")


atexit.register(shutdown_shared_executor)


@dataclass(frozen=True)
class ReplicationTask:
    """One replication of one policy on one configuration."""

    key: Hashable
    config: SimulationConfig
    policy_name: str
    estimation_error: float | None
    seed: int | np.random.SeedSequence


@dataclass(frozen=True)
class CellTask:
    """One sweep cell: every (policy × replication) member at one point.

    ``policy_names`` are the display names used in member keys — the
    same ``(x, policy, r)`` triples the flat per-replication grid uses —
    while ``base_names``/``estimation_errors`` are the registry
    coordinates workers rebuild each policy from (mirroring
    :class:`ReplicationTask`, whose cache keys these cells share).
    """

    x: Hashable
    config: SimulationConfig
    policy_names: tuple[str, ...]
    base_names: tuple[str, ...]
    estimation_errors: tuple[float | None, ...]
    seeds: tuple

    def member_key(self, pi: int, r: int) -> tuple:
        return (self.x, self.policy_names[pi], r)

    def policies(self):
        return [
            get_policy(base, estimation_error=err)
            for base, err in zip(self.base_names, self.estimation_errors)
        ]


@dataclass(frozen=True)
class TaskFailure:
    """One grid cell that exhausted its retries.

    ``key`` is the sweep's task key — for the standard experiment
    sweeps a ``(sweep point, policy, replication)`` triple — so the
    failure names exactly which cell died and why.
    """

    key: Hashable
    policy_name: str
    attempts: int
    error: str

    def describe(self) -> str:
        where = self.key
        if isinstance(where, tuple) and len(where) == 3:
            x, policy, r = where
            where = f"point {x!r}, policy {policy}, replication {r}"
        first_line = self.error.strip().splitlines()[-1] if self.error else "?"
        return f"{where} ({self.attempts} attempt(s)): {first_line}"


class GridTaskError(RuntimeError):
    """Aggregate error for a grid run with unrecoverable task failures.

    Subclasses :class:`RuntimeError` and keeps the historical
    "grid tasks failed" message, so existing handlers keep working;
    structured details live in :attr:`failures`.
    """

    def __init__(self, failures: list["TaskFailure"], total: int):
        self.failures = tuple(failures)
        detail = "\n\n".join(
            f"task {f.key!r}:\n{f.error}" for f in failures[:5]
        )
        super().__init__(
            f"{len(failures)} of {total} grid tasks failed; "
            f"first failure(s):\n{detail}"
        )


@dataclass
class GridReport:
    """Outcomes plus observability for one grid run."""

    #: task key → (mean_response_time, mean_response_ratio, fairness,
    #: jobs, dispatch_fractions, loss_rate) — the per-replication
    #: outcome tuple (loss_rate is 0.0 for fault-free runs).
    outcomes: dict
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-stage wall-clock seconds ("cache_lookup", "simulate").
    timings: dict[str, float] = field(default_factory=dict)
    #: Quarantined cells (only populated with ``quarantine=True``).
    failures: list[TaskFailure] = field(default_factory=list)
    #: Finished cells served from the sweep checkpoint.
    checkpoint_hits: int = 0
    #: Task attempts beyond the first (crashes/timeouts that recovered).
    retried: int = 0


def _result_outcome(result):
    """The per-replication outcome tuple stored in caches/checkpoints."""
    return (
        result.metrics.mean_response_time,
        result.metrics.mean_response_ratio,
        result.metrics.fairness,
        result.metrics.jobs,
        result.dispatch_fractions,
        result.loss_rate,
    )


def _run_replication(task: ReplicationTask):
    policy = get_policy(task.policy_name, estimation_error=task.estimation_error)
    result = run_policy_once(task.config, policy, seed=task.seed)
    return _result_outcome(result)


def _worker(task: ReplicationTask):
    """Pool entry point: never raises — errors travel back as text.

    The fourth element is the worker's counter delta for this task
    (:func:`repro.obs.counters.diff_since`): the parent merges it so a
    parallel grid reports the same run-level counters as a serial one.
    In-process callers ignore it — their increments already landed in
    the live registry.
    """
    before = counters.snapshot()
    try:
        if _TEST_WORKER_HOOK is not None:
            _TEST_WORKER_HOOK(task)
        outcome = _run_replication(task)
        return task.key, outcome, None, counters.diff_since(before)
    except Exception:  # noqa: BLE001 — captured per task by design
        return task.key, None, traceback.format_exc(), None


def _run_cell_members(task: CellTask, members, pool: StreamPool):
    """Run the given (policy, rep) members of one cell on pooled streams.

    Static members on ps/fcfs go through the batched
    :func:`~repro.sim.fastpath.run_cell` replay; everything else falls
    back to :func:`run_policy_once` per member (identical seeds either
    way).  Yields ``(member_key, outcome_tuple)`` pairs.
    """
    policies = task.policies()
    fast = _cell_fast_indices(task.config, policies)
    fast_members = [(pi, r) for pi, r in members if pi in fast]
    batched = {}
    if fast_members:
        batched = run_cell(
            task.config, policies, task.seeds, pool=pool, members=fast_members
        )
    out = []
    for pi, r in members:
        result = batched.get((pi, r))
        if result is None:
            result = run_policy_once(
                task.config, policies[pi], seed=task.seeds[r]
            )
        out.append((task.member_key(pi, r), _result_outcome(result)))
    return out


def _cell_worker(payload):
    """Pool entry point for one (cell, replication-chunk) slice: never
    raises.

    ``payload`` is ``(task, members, rep_handles)`` — ``members`` the
    ``(pi, r)`` pairs of this chunk (every pending policy of each of its
    replications, so cross-policy plan dedup still fires inside the
    worker), ``rep_handles`` a list of ``(r, StreamHandle | None)`` with
    a handle mapping the parent's shared-memory streams for that
    replication; ``None`` means every member of that replication is
    engine-bound and samples privately.
    """
    task, members, rep_handles = payload
    pool = None
    attached = []
    before = counters.snapshot()
    try:
        pool = StreamPool(max_entries=max(1, len(rep_handles)))
        for r, handle in rep_handles:
            if handle is not None:
                view = attach_streams(handle)
                attached.append(view)
                pool.prime(task.config, task.seeds[r], view.times, view.sizes)
        settled = _run_cell_members(task, members, pool)
        return (
            [(key, outcome, None) for key, outcome in settled],
            counters.diff_since(before),
        )
    except Exception:  # noqa: BLE001 — captured per slice by design
        tb = traceback.format_exc()
        return (
            [(task.member_key(pi, r), None, tb) for pi, r in members],
            None,
        )
    finally:
        pool = None  # noqa: F841 — drop shm-backed views before unmapping
        for view in attached:
            view.close()


def _retry_delay(next_attempt: int) -> float:
    """Bounded exponential backoff before attempt *next_attempt* (≥ 2)."""
    return min(_RETRY_MAX_DELAY, _RETRY_BASE_DELAY * 2.0 ** (next_attempt - 2))


def _run_serial(pending: list[ReplicationTask], retries: int):
    """In-process execution with inline retries (no timeout support)."""
    for task in pending:
        for attempt in range(1, retries + 2):
            # In-process: counter increments already landed, delta unused.
            _, outcome, error, _delta = _worker(task)
            if error is None or attempt == retries + 1:
                yield task, outcome, error, attempt
                break
            time.sleep(_retry_delay(attempt + 1))


def _run_hardened(
    pending: list[ReplicationTask],
    n_jobs: int,
    retries: int,
    task_timeout: float | None,
):
    """Submit-based parallel execution with crash and timeout recovery.

    Each task gets its own future (no chunking), so one dead or stuck
    worker only costs the tasks it was holding.  A dead worker breaks
    the *whole* pool, and ``BrokenProcessPool`` cannot say which task
    killed it — so nobody is charged an attempt for a break; instead
    every task that was in flight becomes a *suspect* and re-runs in
    isolation (one task per fresh pool at a time).  Alone, the culprit
    is unambiguous: an isolated break or timeout charges that task's
    attempt, while innocent bystanders complete for free.
    """
    from collections import deque

    results: list[tuple[ReplicationTask, object, str | None, int]] = []
    todo = deque((task, 1) for task in pending)
    isolated: deque = deque()  # suspects: run one at a time
    in_flight: dict = {}  # future -> (task, attempt, deadline)

    def settle(task, attempt, outcome, error, queue):
        """Record a completed attempt, or requeue it with backoff."""
        if error is None:
            results.append((task, outcome, None, attempt))
        elif attempt <= retries:
            time.sleep(_retry_delay(attempt + 1))
            queue.append((task, attempt + 1))
        else:
            results.append((task, None, error, attempt))

    while todo or in_flight:
        pool = shared_executor(n_jobs)
        while todo and len(in_flight) < 2 * n_jobs:
            task, attempt = todo.popleft()
            deadline = (
                time.monotonic() + task_timeout if task_timeout is not None else None
            )
            in_flight[pool.submit(_worker, task)] = (task, attempt, deadline)

        wait_timeout = None
        if task_timeout is not None:
            nearest = min(d for (_, _, d) in in_flight.values())
            wait_timeout = max(0.0, nearest - time.monotonic()) + 0.01
        done, _ = wait(set(in_flight), timeout=wait_timeout,
                       return_when=FIRST_COMPLETED)

        broken = False
        for fut in done:
            task, attempt, _ = in_flight.pop(fut)
            try:
                _, outcome, error, delta = fut.result()
                if error is None:
                    counters.merge(delta)
            except BrokenProcessPool:
                # Can't attribute the dead worker: re-run in isolation,
                # unattributed breaks don't consume an attempt.
                isolated.append((task, attempt))
                broken = True
                continue
            except Exception:  # noqa: BLE001 — surfaced as a task failure
                outcome, error = None, traceback.format_exc()
            settle(task, attempt, outcome, error, todo)

        if task_timeout is not None:
            now = time.monotonic()
            for fut, (task, attempt, deadline) in list(in_flight.items()):
                if now >= deadline:
                    in_flight.pop(fut)
                    if not fut.cancel():
                        # Already running: the worker can't be reclaimed,
                        # so the pool gets recycled below.
                        broken = True
                    error = f"task exceeded its {task_timeout}s wall-clock budget"
                    settle(task, attempt, None, error, todo)

        if broken:
            # Remaining in-flight tasks were on the broken pool too:
            # they join the suspects, uncharged.
            for task, attempt, _ in in_flight.values():
                isolated.append((task, attempt))
            in_flight.clear()
            _rebuild_pool()

        # Drain suspects one per pool so failures attribute cleanly.
        while isolated and not in_flight:
            task, attempt = isolated.popleft()
            pool = shared_executor(n_jobs)
            deadline = (
                time.monotonic() + task_timeout if task_timeout is not None else None
            )
            fut = pool.submit(_worker, task)
            solo_timeout = (
                max(0.0, deadline - time.monotonic()) + 0.01
                if deadline is not None
                else None
            )
            done, _ = wait([fut], timeout=solo_timeout)
            if not done:
                fut.cancel()
                _rebuild_pool()
                error = f"task exceeded its {task_timeout}s wall-clock budget"
                settle(task, attempt, None, error, isolated)
                continue
            try:
                _, outcome, error, delta = fut.result()
                if error is None:
                    counters.merge(delta)
            except BrokenProcessPool:
                _rebuild_pool()
                outcome = None
                error = "task killed its worker process"
            except Exception:  # noqa: BLE001 — surfaced as a task failure
                outcome, error = None, traceback.format_exc()
            settle(task, attempt, outcome, error, isolated)

    return results


def run_replication_grid(
    tasks: Iterable[ReplicationTask],
    *,
    n_jobs: int | str | None = None,
    cache: ReplicationCache | None = None,
    chunks_per_worker: int = 4,
    retries: int = 0,
    task_timeout: float | None = None,
    quarantine: bool = False,
    checkpoint: SweepCheckpoint | None = None,
) -> GridReport:
    """Run every task: checkpoint first, then cache, then the worker grid.

    Results are keyed by ``task.key`` so aggregation is insensitive to
    completion order; with the same seeds the outcome is bit-identical
    to running the tasks serially.  Tasks that fail after ``retries``
    extra attempts are raised as one aggregate :class:`GridTaskError` —
    or, with ``quarantine=True``, reported in ``GridReport.failures``
    while every healthy cell still completes.  See the module docstring
    for the hardening knobs.
    """
    tasks = list(tasks)
    n_jobs = resolve_n_jobs(n_jobs)
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(f"task_timeout must be positive, got {task_timeout}")
    report = GridReport(outcomes={})

    t0 = time.perf_counter()
    with span("cache_lookup", tasks=len(tasks)):
        done_cells = checkpoint.load() if checkpoint is not None else {}
        pending: list[ReplicationTask] = []
        cache_keys: dict[Hashable, str] = {}
        for task in tasks:
            if task.key in done_cells:
                report.outcomes[task.key] = done_cells[task.key]
                report.checkpoint_hits += 1
                continue
            if cache is not None:
                ck = cache.task_key(
                    task.config, task.policy_name, task.estimation_error, task.seed
                )
                cache_keys[task.key] = ck
                hit = cache.get(ck)
                if hit is not None:
                    report.outcomes[task.key] = hit
                    report.cache_hits += 1
                    if checkpoint is not None:
                        checkpoint.record(task.key, hit)
                    continue
                report.cache_misses += 1
            pending.append(task)
    report.timings["cache_lookup"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    auto_serial = (
        len(pending) <= _AUTO_SERIAL_TASKS
        and retries == 0
        and task_timeout is None
        and _TEST_WORKER_HOOK is None
    )
    if n_jobs == 1 or len(pending) <= 1 or auto_serial:
        completed = _run_serial(pending, retries)
    elif retries == 0 and task_timeout is None:
        pool = shared_executor(n_jobs)
        # Chunked submission amortizes pickling overhead while keeping
        # enough chunks in flight to balance uneven task durations.
        chunksize = max(1, len(pending) // (chunks_per_worker * n_jobs))

        def _merged_map():
            for task, (_key, outcome, error, delta) in zip(
                pending, pool.map(_worker, pending, chunksize=chunksize)
            ):
                if error is None:
                    counters.merge(delta)
                yield task, outcome, error, 1

        completed = _merged_map()
    else:
        completed = _run_hardened(pending, n_jobs, retries, task_timeout)

    failures: list[TaskFailure] = []
    for task, outcome, error, attempts in completed:
        report.retried += attempts - 1
        if error is not None:
            failures.append(
                TaskFailure(
                    key=task.key,
                    policy_name=task.policy_name,
                    attempts=attempts,
                    error=error,
                )
            )
            continue
        report.outcomes[task.key] = outcome
        if cache is not None:
            cache.put(cache_keys[task.key], outcome)
        if checkpoint is not None:
            checkpoint.record(task.key, outcome)
    report.timings["simulate"] = time.perf_counter() - t0

    if failures:
        report.failures = failures
        if not quarantine:
            raise GridTaskError(failures, len(tasks))
    return report


def run_cell_grid(
    cells: Iterable[CellTask],
    *,
    n_jobs: int | str | None = None,
    cache: ReplicationCache | None = None,
    checkpoint: SweepCheckpoint | None = None,
) -> GridReport:
    """Run sweep cells whole: one stream materialization per replication.

    Member outcomes are keyed ``(cell.x, policy_name, r)`` with the same
    cache keys as the flat per-replication grid, so results, caches, and
    checkpoints are interchangeable between the two paths — and with the
    same seeds the outcomes are bit-identical.  Parallel runs fan a cell
    out one replication-chunk slice per worker — every policy of a
    replication stays together so cross-policy plan dedup survives the
    split — shipping each replication's streams through shared memory;
    cells run back to back so at most one cell's streams are resident,
    and the parent owns and always unlinks every segment, even when a
    worker crashes.

    Hardening (retries, timeouts, quarantine) is deliberately absent —
    sweeps that need it take :func:`run_replication_grid`.
    """
    cells = list(cells)
    n_jobs = resolve_n_jobs(n_jobs)
    report = GridReport(outcomes={})

    t0 = time.perf_counter()
    done_cells = checkpoint.load() if checkpoint is not None else {}
    pending: list[tuple[CellTask, list[tuple[int, int]]]] = []
    cache_keys: dict[Hashable, str] = {}
    total = 0
    for task in cells:
        members: list[tuple[int, int]] = []
        for pi in range(len(task.policy_names)):
            for r in range(len(task.seeds)):
                total += 1
                key = task.member_key(pi, r)
                if key in done_cells:
                    report.outcomes[key] = done_cells[key]
                    report.checkpoint_hits += 1
                    continue
                if cache is not None:
                    ck = cache.task_key(
                        task.config,
                        task.base_names[pi],
                        task.estimation_errors[pi],
                        task.seeds[r],
                    )
                    cache_keys[key] = ck
                    hit = cache.get(ck)
                    if hit is not None:
                        report.outcomes[key] = hit
                        report.cache_hits += 1
                        if checkpoint is not None:
                            checkpoint.record(key, hit)
                        continue
                    report.cache_misses += 1
                members.append((pi, r))
        if members:
            pending.append((task, members))
    report.timings["cache_lookup"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    failures: list[TaskFailure] = []

    def settle(key, outcome, error):
        if error is not None:
            failures.append(
                TaskFailure(key=key, policy_name=key[1], attempts=1, error=error)
            )
            return
        report.outcomes[key] = outcome
        if cache is not None:
            cache.put(cache_keys[key], outcome)
        if checkpoint is not None:
            checkpoint.record(key, outcome)

    n_pending = sum(len(m) for _, m in pending)
    if n_jobs == 1 or n_pending <= _AUTO_SERIAL_TASKS:
        for task, members in pending:
            pool = StreamPool(max_entries=max(1, len(task.seeds)))
            try:
                for key, outcome in _run_cell_members(task, members, pool):
                    settle(key, outcome, None)
            except Exception:  # noqa: BLE001 — every member charged once
                tb = traceback.format_exc()
                for pi, r in members:
                    settle(task.member_key(pi, r), None, tb)
    else:
        pool_exec = shared_executor(n_jobs)
        for task, members in pending:
            fast = _cell_fast_indices(task.config, task.policies())
            by_rep: dict[int, list[int]] = {}
            for pi, r in members:
                by_rep.setdefault(r, []).append(pi)
            # Slice by replication chunks, keeping every policy of a
            # replication in the same worker: the batched replay can
            # then dedup identical dispatch plans across policies,
            # which a per-policy slicing would forfeit.
            reps = sorted(by_rep)
            n_chunks = max(1, min(n_jobs, len(reps)))
            with SharedStreamPool() as shared:
                subtasks = []
                for chunk in (reps[i::n_chunks] for i in range(n_chunks)):
                    if not chunk:
                        continue
                    cmembers = [
                        (pi, r) for r in chunk for pi in sorted(by_rep[r])
                    ]
                    rep_handles = []
                    for r in chunk:
                        handle = (
                            shared.share(task.config, task.seeds[r])
                            if any(pi in fast for pi in by_rep[r])
                            else None
                        )
                        rep_handles.append((r, handle))
                    subtasks.append((task, cmembers, rep_handles))
                for settled, delta in pool_exec.map(_cell_worker, subtasks):
                    counters.merge(delta or {})
                    for key, outcome, error in settled:
                        settle(key, outcome, error)
    report.timings["simulate"] = time.perf_counter() - t0

    if failures:
        report.failures = failures
        raise GridTaskError(failures, total)
    return report


def summarize_outcomes(
    policy_name: str,
    config: SimulationConfig,
    outcomes,
    *,
    confidence: float = 0.95,
) -> PolicyEvaluation:
    """Fold per-replication outcome tuples (in seed order) into a
    :class:`PolicyEvaluation` — the same accumulation order as the
    serial :func:`~repro.core.evaluate.evaluate_policy` loop, so the
    summary is bit-identical to the serial path."""
    outcomes = list(outcomes)
    times = [o[0] for o in outcomes]
    ratios = [o[1] for o in outcomes]
    fairs = [o[2] for o in outcomes]
    jobs = [o[3] for o in outcomes]
    fractions = np.zeros(config.n)
    for o in outcomes:
        fractions += o[4]
    loss = None
    if config.faults is not None and config.faults.enabled:
        loss = summarize_replications(
            [o[5] if len(o) > 5 else 0.0 for o in outcomes], confidence
        )
    return PolicyEvaluation(
        policy_name=policy_name,
        config=config,
        mean_response_time=summarize_replications(times, confidence),
        mean_response_ratio=summarize_replications(ratios, confidence),
        fairness=summarize_replications(fairs, confidence),
        dispatch_fractions=fractions / len(outcomes),
        replications=len(outcomes),
        jobs_per_replication=float(np.mean(jobs)),
        loss_rate=loss,
    )
