"""Grid-parallel replication executor with a shared worker pool.

An entire sweep — every (sweep point × policy × replication) cell of a
figure — flattens into one task list and fans out across worker
processes.  Three properties make this the backbone of every experiment
runner:

* **One pool per process.**  The ``ProcessPoolExecutor`` is created
  lazily on first parallel use and reused across sweep points, figures,
  and :func:`~repro.core.parallel.evaluate_policy_parallel` calls in a
  single CLI invocation — no per-call spin-up churn.  Worker processes
  persist, so per-process memos (the round-robin dispatch-sequence
  cache) stay warm across tasks.
* **Bit-identical results.**  Each replication derives its streams from
  its own seed, workers rebuild policies from registry names, and the
  caller aggregates outcomes keyed by task — never by completion order.
  ``n_jobs=1`` bypasses the pool (and pickling) entirely.
* **Failure isolation.**  A crashing task does not poison the pool: the
  worker captures the traceback per task and the parent raises one
  aggregate error naming the failed cells.

``n_jobs`` resolution: explicit argument > ``REPRO_JOBS`` environment
variable > 1 (serial).  The string ``"auto"`` maps to ``os.cpu_count()``.
"""

from __future__ import annotations

import atexit
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import numpy as np

from ..metrics import summarize_replications
from ..sim.config import SimulationConfig
from .cache import ReplicationCache
from .evaluate import PolicyEvaluation, run_policy_once
from .policies import get_policy

__all__ = [
    "ReplicationTask",
    "GridReport",
    "resolve_n_jobs",
    "shared_executor",
    "shutdown_shared_executor",
    "run_replication_grid",
    "summarize_outcomes",
]

_pool: ProcessPoolExecutor | None = None
_pool_workers = 0


def resolve_n_jobs(value: int | str | None = None) -> int:
    """Resolve a worker count: arg > ``REPRO_JOBS`` env > 1; 'auto' = cores."""
    if value is None:
        value = os.environ.get("REPRO_JOBS", "1")
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"n_jobs must be a positive integer or 'auto', got {value!r}"
            ) from None
    n = int(value)
    if n < 1:
        raise ValueError(f"n_jobs must be positive, got {n}")
    return n


def shared_executor(n_jobs: int) -> ProcessPoolExecutor:
    """The process-wide worker pool, created lazily on first use.

    Reused while ``n_jobs`` stays the same; a different ``n_jobs``
    drains the old pool and builds a fresh one.
    """
    global _pool, _pool_workers
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    if _pool is None or _pool_workers != n_jobs:
        shutdown_shared_executor()
        _pool = ProcessPoolExecutor(max_workers=n_jobs)
        _pool_workers = n_jobs
    return _pool


def shutdown_shared_executor() -> None:
    """Drain and drop the shared pool (no-op when none exists)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown()
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_shared_executor)


@dataclass(frozen=True)
class ReplicationTask:
    """One replication of one policy on one configuration."""

    key: Hashable
    config: SimulationConfig
    policy_name: str
    estimation_error: float | None
    seed: int | np.random.SeedSequence


@dataclass
class GridReport:
    """Outcomes plus observability for one grid run."""

    #: task key → (mean_response_time, mean_response_ratio, fairness,
    #: jobs, dispatch_fractions) — the per-replication outcome tuple.
    outcomes: dict
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-stage wall-clock seconds ("cache_lookup", "simulate").
    timings: dict[str, float] = field(default_factory=dict)


def _run_replication(task: ReplicationTask):
    policy = get_policy(task.policy_name, estimation_error=task.estimation_error)
    result = run_policy_once(task.config, policy, seed=task.seed)
    return (
        result.metrics.mean_response_time,
        result.metrics.mean_response_ratio,
        result.metrics.fairness,
        result.metrics.jobs,
        result.dispatch_fractions,
    )


def _worker(task: ReplicationTask):
    """Pool entry point: never raises — errors travel back as text."""
    try:
        return task.key, _run_replication(task), None
    except Exception:  # noqa: BLE001 — captured per task by design
        return task.key, None, traceback.format_exc()


def run_replication_grid(
    tasks: Iterable[ReplicationTask],
    *,
    n_jobs: int | str | None = None,
    cache: ReplicationCache | None = None,
    chunks_per_worker: int = 4,
) -> GridReport:
    """Run every task, against the cache first, then the worker grid.

    Results are keyed by ``task.key`` so aggregation is insensitive to
    completion order; with the same seeds the outcome is bit-identical
    to running the tasks serially.  Tasks that raise are collected and
    re-raised as one :class:`RuntimeError` after the full grid drains.
    """
    tasks = list(tasks)
    n_jobs = resolve_n_jobs(n_jobs)
    report = GridReport(outcomes={})

    t0 = time.perf_counter()
    pending: list[ReplicationTask] = []
    cache_keys: dict[Hashable, str] = {}
    for task in tasks:
        if cache is not None:
            ck = cache.task_key(
                task.config, task.policy_name, task.estimation_error, task.seed
            )
            cache_keys[task.key] = ck
            hit = cache.get(ck)
            if hit is not None:
                report.outcomes[task.key] = hit
                report.cache_hits += 1
                continue
            report.cache_misses += 1
        pending.append(task)
    report.timings["cache_lookup"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    if n_jobs == 1 or len(pending) <= 1:
        raw = map(_worker, pending)
    else:
        pool = shared_executor(n_jobs)
        # Chunked submission amortizes pickling overhead while keeping
        # enough chunks in flight to balance uneven task durations.
        chunksize = max(1, len(pending) // (chunks_per_worker * n_jobs))
        raw = pool.map(_worker, pending, chunksize=chunksize)

    failures: list[tuple[Hashable, str]] = []
    for key, outcome, error in raw:
        if error is not None:
            failures.append((key, error))
            continue
        report.outcomes[key] = outcome
        if cache is not None:
            cache.put(cache_keys[key], outcome)
    report.timings["simulate"] = time.perf_counter() - t0

    if failures:
        detail = "\n\n".join(f"task {key!r}:\n{err}" for key, err in failures[:5])
        raise RuntimeError(
            f"{len(failures)} of {len(tasks)} grid tasks failed; "
            f"first failure(s):\n{detail}"
        )
    return report


def summarize_outcomes(
    policy_name: str,
    config: SimulationConfig,
    outcomes,
    *,
    confidence: float = 0.95,
) -> PolicyEvaluation:
    """Fold per-replication outcome tuples (in seed order) into a
    :class:`PolicyEvaluation` — the same accumulation order as the
    serial :func:`~repro.core.evaluate.evaluate_policy` loop, so the
    summary is bit-identical to the serial path."""
    outcomes = list(outcomes)
    times = [o[0] for o in outcomes]
    ratios = [o[1] for o in outcomes]
    fairs = [o[2] for o in outcomes]
    jobs = [o[3] for o in outcomes]
    fractions = np.zeros(config.n)
    for o in outcomes:
        fractions += o[4]
    return PolicyEvaluation(
        policy_name=policy_name,
        config=config,
        mean_response_time=summarize_replications(times, confidence),
        mean_response_ratio=summarize_replications(ratios, confidence),
        fairness=summarize_replications(fairs, confidence),
        dispatch_fractions=fractions / len(outcomes),
        replications=len(outcomes),
        jobs_per_replication=float(np.mean(jobs)),
    )
