"""High-level evaluation API: policy × configuration → replicated metrics.

This is the library's main entry point.  One call runs the paper's
protocol: R independent replications with distinct random streams, each
collecting statistics only after the warm-up period, summarized with
confidence intervals per metric.

Static policies under the PS and FCFS disciplines are routed to the
vectorized fast path automatically (identical statistics, several times
faster); Dynamic Least-Load and the finite-quantum discipline go through
the event engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics import ReplicationSummary, summarize_replications
from ..rng import replication_seeds, substream
from ..sim import SimulationConfig, SimulationResults, run_simulation, run_static_simulation
from .policies import SchedulingPolicy

__all__ = [
    "PolicyEvaluation",
    "evaluate_policy",
    "evaluate_policy_to_precision",
    "run_policy_once",
]


@dataclass(frozen=True)
class PolicyEvaluation:
    """Replication-averaged metrics for one (policy, configuration) pair."""

    policy_name: str
    config: SimulationConfig
    mean_response_time: ReplicationSummary
    mean_response_ratio: ReplicationSummary
    fairness: ReplicationSummary
    #: Replication-averaged post-warm-up dispatch fraction per computer.
    dispatch_fractions: np.ndarray
    replications: int
    jobs_per_replication: float
    #: Post-warm-up job-loss rate across replications; only populated by
    #: fault-injection sweeps (None on the classic paper experiments).
    loss_rate: "ReplicationSummary | None" = None

    def metric(self, name: str) -> ReplicationSummary:
        """Look up one of the paper's three metrics (or loss_rate) by name."""
        metrics = {
            "mean_response_time": self.mean_response_time,
            "mean_response_ratio": self.mean_response_ratio,
            "fairness": self.fairness,
        }
        if self.loss_rate is not None:
            metrics["loss_rate"] = self.loss_rate
        try:
            return metrics[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; expected one of {sorted(metrics)}"
            ) from None


def run_policy_once(
    config: SimulationConfig,
    policy: SchedulingPolicy,
    *,
    seed: int | np.random.SeedSequence = 0,
    record_trace: bool = False,
    force_engine: bool = False,
) -> SimulationResults:
    """One replication of *policy* on *config*.

    The dispatcher's random stream is derived from *seed* under the
    "dispatch" role, so two policies evaluated with the same seed see
    identical arrival/size streams (common random numbers).
    """
    network = config.network()
    alphas = policy.fractions(network)
    dispatcher = policy.build_dispatcher(config.speeds, substream(seed, "dispatch"))
    use_fast = (
        policy.is_static
        and dispatcher.is_static
        and config.discipline in ("ps", "fcfs")
        and not force_engine
        and (config.faults is None or not config.faults.enabled)
    )
    if use_fast:
        return run_static_simulation(
            config, dispatcher, alphas, seed=seed, record_trace=record_trace
        )
    return run_simulation(
        config, dispatcher, alphas, seed=seed, record_trace=record_trace
    )


def evaluate_policy(
    config: SimulationConfig,
    policy: SchedulingPolicy,
    *,
    replications: int = 10,
    base_seed: int = 0,
    confidence: float = 0.95,
    force_engine: bool = False,
) -> PolicyEvaluation:
    """Replicate :func:`run_policy_once` and summarize the paper metrics."""
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    seeds = replication_seeds(base_seed, replications)
    times, ratios, fairs, jobs = [], [], [], []
    fractions = np.zeros(config.n)
    for seed in seeds:
        result = run_policy_once(
            config, policy, seed=seed, force_engine=force_engine
        )
        times.append(result.metrics.mean_response_time)
        ratios.append(result.metrics.mean_response_ratio)
        fairs.append(result.metrics.fairness)
        jobs.append(result.metrics.jobs)
        fractions += result.dispatch_fractions
    return PolicyEvaluation(
        policy_name=policy.name,
        config=config,
        mean_response_time=summarize_replications(times, confidence),
        mean_response_ratio=summarize_replications(ratios, confidence),
        fairness=summarize_replications(fairs, confidence),
        dispatch_fractions=fractions / replications,
        replications=replications,
        jobs_per_replication=float(np.mean(jobs)),
    )


def evaluate_policy_to_precision(
    config: SimulationConfig,
    policy: SchedulingPolicy,
    *,
    target_relative_half_width: float = 0.05,
    metric: str = "mean_response_ratio",
    min_replications: int = 3,
    max_replications: int = 50,
    base_seed: int = 0,
    confidence: float = 0.95,
) -> PolicyEvaluation:
    """Sequential replication: run until the chosen metric's CI is tight.

    Adds replications one at a time (reusing the deterministic
    per-replication seeds, so results are a strict extension of a fixed
    ``evaluate_policy`` call) until the confidence interval's relative
    half-width drops below the target or ``max_replications`` is hit.

    The heavy-load points of Figures 5/6 are exactly where a fixed
    replication count under-delivers; this is the data-driven version
    of the replication boost those experiments apply.
    """
    if not 0.0 < target_relative_half_width:
        raise ValueError(
            f"target half-width must be positive, got {target_relative_half_width}"
        )
    if not 1 <= min_replications <= max_replications:
        raise ValueError(
            f"need 1 <= min_replications <= max_replications, got "
            f"{min_replications}/{max_replications}"
        )
    seeds = replication_seeds(base_seed, max_replications)
    times, ratios, fairs, jobs = [], [], [], []
    fractions = np.zeros(config.n)
    done = 0
    for seed in seeds:
        result = run_policy_once(config, policy, seed=seed)
        times.append(result.metrics.mean_response_time)
        ratios.append(result.metrics.mean_response_ratio)
        fairs.append(result.metrics.fairness)
        jobs.append(result.metrics.jobs)
        fractions += result.dispatch_fractions
        done += 1
        if done < min_replications:
            continue
        tracked = {
            "mean_response_time": times,
            "mean_response_ratio": ratios,
            "fairness": fairs,
        }
        try:
            values = tracked[metric]
        except KeyError:
            raise KeyError(
                f"unknown metric {metric!r}; expected one of {sorted(tracked)}"
            ) from None
        summary = summarize_replications(values, confidence)
        if summary.relative_half_width <= target_relative_half_width:
            break
    return PolicyEvaluation(
        policy_name=policy.name,
        config=config,
        mean_response_time=summarize_replications(times, confidence),
        mean_response_ratio=summarize_replications(ratios, confidence),
        fairness=summarize_replications(fairs, confidence),
        dispatch_fractions=fractions / done,
        replications=done,
        jobs_per_replication=float(np.mean(jobs)),
    )
