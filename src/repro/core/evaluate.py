"""High-level evaluation API: policy × configuration → replicated metrics.

This is the library's main entry point.  One call runs the paper's
protocol: R independent replications with distinct random streams, each
collecting statistics only after the warm-up period, summarized with
confidence intervals per metric.

Static policies under the PS and FCFS disciplines are routed to the
vectorized fast path automatically (identical statistics, several times
faster); Dynamic Least-Load and the finite-quantum discipline go through
the event engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics import (
    PairedSummary,
    ReplicationSummary,
    summarize_paired,
    summarize_replications,
)
from ..obs import counters
from ..rng import replication_seeds, substream
from ..sim import (
    SimulationConfig,
    SimulationResults,
    run_cell,
    run_simulation,
    run_static_simulation,
)
from ..sim.streams import StreamPool
from .policies import SchedulingPolicy, get_policy

__all__ = [
    "PolicyEvaluation",
    "CellEvaluation",
    "evaluate_policy",
    "evaluate_policy_to_precision",
    "evaluate_cell",
    "evaluate_cell_to_precision",
    "run_policy_once",
]


@dataclass(frozen=True)
class PolicyEvaluation:
    """Replication-averaged metrics for one (policy, configuration) pair."""

    policy_name: str
    config: SimulationConfig
    mean_response_time: ReplicationSummary
    mean_response_ratio: ReplicationSummary
    fairness: ReplicationSummary
    #: Replication-averaged post-warm-up dispatch fraction per computer.
    dispatch_fractions: np.ndarray
    replications: int
    jobs_per_replication: float
    #: Post-warm-up job-loss rate across replications; only populated by
    #: fault-injection sweeps (None on the classic paper experiments).
    loss_rate: "ReplicationSummary | None" = None

    def metric(self, name: str) -> ReplicationSummary:
        """Look up one of the paper's three metrics (or loss_rate) by name."""
        metrics = {
            "mean_response_time": self.mean_response_time,
            "mean_response_ratio": self.mean_response_ratio,
            "fairness": self.fairness,
        }
        if self.loss_rate is not None:
            metrics["loss_rate"] = self.loss_rate
        try:
            return metrics[name]
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; expected one of {sorted(metrics)}"
            ) from None


def run_policy_once(
    config: SimulationConfig,
    policy: SchedulingPolicy,
    *,
    seed: int | np.random.SeedSequence = 0,
    record_trace: bool = False,
    force_engine: bool = False,
) -> SimulationResults:
    """One replication of *policy* on *config*.

    The dispatcher's random stream is derived from *seed* under the
    "dispatch" role, so two policies evaluated with the same seed see
    identical arrival/size streams (common random numbers).
    """
    network = config.network()
    alphas = policy.fractions(network)
    dispatcher = policy.build_dispatcher(config.speeds, substream(seed, "dispatch"))
    use_fast = (
        policy.is_static
        and dispatcher.is_static
        and config.discipline in ("ps", "fcfs")
        and not force_engine
        and (config.faults is None or not config.faults.enabled)
    )
    if use_fast:
        result = run_static_simulation(
            config, dispatcher, alphas, seed=seed, record_trace=record_trace
        )
    else:
        result = run_simulation(
            config, dispatcher, alphas, seed=seed, record_trace=record_trace
        )
    counters.record_run(result)
    return result


def evaluate_policy(
    config: SimulationConfig,
    policy: SchedulingPolicy,
    *,
    replications: int = 10,
    base_seed: int = 0,
    confidence: float = 0.95,
    force_engine: bool = False,
) -> PolicyEvaluation:
    """Replicate :func:`run_policy_once` and summarize the paper metrics."""
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    seeds = replication_seeds(base_seed, replications)
    times, ratios, fairs, jobs = [], [], [], []
    fractions = np.zeros(config.n)
    for seed in seeds:
        result = run_policy_once(
            config, policy, seed=seed, force_engine=force_engine
        )
        times.append(result.metrics.mean_response_time)
        ratios.append(result.metrics.mean_response_ratio)
        fairs.append(result.metrics.fairness)
        jobs.append(result.metrics.jobs)
        fractions += result.dispatch_fractions
    return PolicyEvaluation(
        policy_name=policy.name,
        config=config,
        mean_response_time=summarize_replications(times, confidence),
        mean_response_ratio=summarize_replications(ratios, confidence),
        fairness=summarize_replications(fairs, confidence),
        dispatch_fractions=fractions / replications,
        replications=replications,
        jobs_per_replication=float(np.mean(jobs)),
    )


def evaluate_policy_to_precision(
    config: SimulationConfig,
    policy: SchedulingPolicy,
    *,
    target_relative_half_width: float = 0.05,
    metric: str = "mean_response_ratio",
    min_replications: int = 3,
    max_replications: int = 50,
    base_seed: int = 0,
    confidence: float = 0.95,
    cache=None,
) -> PolicyEvaluation:
    """Sequential replication: run until the chosen metric's CI is tight.

    Adds replications one at a time (reusing the deterministic
    per-replication seeds, so results are a strict extension of a fixed
    ``evaluate_policy`` call) until the confidence interval's relative
    half-width drops below the target or ``max_replications`` is hit.

    With a :class:`~repro.core.cache.ReplicationCache`, every completed
    replication is looked up before it is simulated and stored after —
    so tightening the target on a later call (or re-running after an
    interruption) extends the earlier run instead of repeating it.

    The heavy-load points of Figures 5/6 are exactly where a fixed
    replication count under-delivers; this is the data-driven version
    of the replication boost those experiments apply.
    """
    if not 0.0 < target_relative_half_width:
        raise ValueError(
            f"target half-width must be positive, got {target_relative_half_width}"
        )
    if not 1 <= min_replications <= max_replications:
        raise ValueError(
            f"need 1 <= min_replications <= max_replications, got "
            f"{min_replications}/{max_replications}"
        )
    seeds = replication_seeds(base_seed, max_replications)
    times, ratios, fairs, jobs = [], [], [], []
    fractions = np.zeros(config.n)
    done = 0
    for seed in seeds:
        # Cache entries are keyed like the grid executor's (registry
        # policies carry no estimation error, so keys coincide and the
        # two paths share entries).
        key = (
            cache.task_key(config, policy.name, None, seed)
            if cache is not None
            else None
        )
        hit = cache.get(key) if key is not None else None
        if hit is not None:
            time_, ratio, fair, jobs_n, fracs = hit[:5]
            times.append(time_)
            ratios.append(ratio)
            fairs.append(fair)
            jobs.append(jobs_n)
            fractions += np.asarray(fracs, dtype=float)
        else:
            result = run_policy_once(config, policy, seed=seed)
            times.append(result.metrics.mean_response_time)
            ratios.append(result.metrics.mean_response_ratio)
            fairs.append(result.metrics.fairness)
            jobs.append(result.metrics.jobs)
            fractions += result.dispatch_fractions
            if key is not None:
                cache.put(
                    key,
                    (
                        result.metrics.mean_response_time,
                        result.metrics.mean_response_ratio,
                        result.metrics.fairness,
                        result.metrics.jobs,
                        result.dispatch_fractions,
                        result.loss_rate,
                    ),
                )
        done += 1
        if done < min_replications:
            continue
        tracked = {
            "mean_response_time": times,
            "mean_response_ratio": ratios,
            "fairness": fairs,
        }
        try:
            values = tracked[metric]
        except KeyError:
            raise KeyError(
                f"unknown metric {metric!r}; expected one of {sorted(tracked)}"
            ) from None
        summary = summarize_replications(values, confidence)
        # A degenerate interval (zero variance, or NaN-poisoned inputs
        # collapsing to a flagged zero width) is final: more
        # replications of the same degenerate data can never tighten
        # it, so stop instead of burning runs to the cap.
        if summary.degenerate or (
            summary.relative_half_width <= target_relative_half_width
        ):
            break
    return PolicyEvaluation(
        policy_name=policy.name,
        config=config,
        mean_response_time=summarize_replications(times, confidence),
        mean_response_ratio=summarize_replications(ratios, confidence),
        fairness=summarize_replications(fairs, confidence),
        dispatch_fractions=fractions / done,
        replications=done,
        jobs_per_replication=float(np.mean(jobs)),
    )


#: Metric names tracked per replication by the cell evaluators.
_CELL_METRICS = ("mean_response_time", "mean_response_ratio", "fairness")


@dataclass(frozen=True)
class CellEvaluation:
    """Every policy of one sweep cell evaluated on shared streams.

    Beyond one :class:`PolicyEvaluation` per policy, the raw
    per-replication metric values are kept (``samples``) so policies can
    be compared with paired statistics: replication *r* of every policy
    saw the same arrival and size streams, making the per-replication
    differences matched pairs.
    """

    config: SimulationConfig
    evaluations: dict[str, PolicyEvaluation]
    #: policy name → metric name → per-replication values (seed order).
    samples: dict[str, dict[str, tuple[float, ...]]]
    replications: int
    confidence: float = 0.95
    #: Stage-1 stream materializations served from the pool (one miss
    #: per replication regardless of policy count when fully batched).
    stream_misses: int = field(default=0, compare=False)

    @property
    def policy_names(self) -> list[str]:
        return list(self.evaluations)

    def __getitem__(self, name: str) -> PolicyEvaluation:
        try:
            return self.evaluations[name]
        except KeyError:
            raise KeyError(
                f"unknown policy {name!r}; have {self.policy_names}"
            ) from None

    def paired(
        self,
        a: str,
        b: str,
        metric: str = "mean_response_ratio",
        confidence: float | None = None,
    ) -> PairedSummary:
        """Paired-difference summary of ``metric`` for policies a − b."""
        for name in (a, b):
            if name not in self.samples:
                raise KeyError(
                    f"unknown policy {name!r}; have {self.policy_names}"
                )
        if metric not in _CELL_METRICS:
            raise KeyError(
                f"unknown metric {metric!r}; expected one of {sorted(_CELL_METRICS)}"
            )
        return summarize_paired(
            self.samples[a][metric],
            self.samples[b][metric],
            confidence if confidence is not None else self.confidence,
            labels=(a, b),
        )


def _resolve_policies(policies) -> list[SchedulingPolicy]:
    resolved = [get_policy(p) if isinstance(p, str) else p for p in policies]
    if not resolved:
        raise ValueError("need at least one policy")
    names = [p.name for p in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate policy names in {names}")
    return resolved


def _cell_fast_indices(config: SimulationConfig, policies) -> set[int]:
    """Policy indices eligible for the batched static fast path."""
    if config.discipline not in ("ps", "fcfs"):
        return set()
    if config.faults is not None and config.faults.enabled:
        return set()
    return {pi for pi, p in enumerate(policies) if p.is_static}


def _run_cell_replication(
    config: SimulationConfig,
    policies,
    seeds,
    r: int,
    pool: StreamPool,
    fast: set[int],
) -> dict[int, SimulationResults]:
    """Replication *r* of every policy: batched where eligible, event
    engine per member otherwise (identical seeds either way)."""
    out: dict[int, SimulationResults] = {}
    members = [(pi, r) for pi in sorted(fast)]
    if members:
        for (pi, _), result in run_cell(
            config, policies, seeds, pool=pool, members=members
        ).items():
            out[pi] = result
    for pi, policy in enumerate(policies):
        if pi not in fast:
            out[pi] = run_policy_once(config, policy, seed=seeds[r])
    return out


def _summarize_cell(
    config: SimulationConfig,
    policies,
    per_policy: list[dict[str, list]],
    confidence: float,
    stream_misses: int,
) -> CellEvaluation:
    evaluations: dict[str, PolicyEvaluation] = {}
    samples: dict[str, dict[str, tuple[float, ...]]] = {}
    replications = len(per_policy[0]["mean_response_ratio"])
    for policy, acc in zip(policies, per_policy):
        evaluations[policy.name] = PolicyEvaluation(
            policy_name=policy.name,
            config=config,
            mean_response_time=summarize_replications(
                acc["mean_response_time"], confidence
            ),
            mean_response_ratio=summarize_replications(
                acc["mean_response_ratio"], confidence
            ),
            fairness=summarize_replications(acc["fairness"], confidence),
            dispatch_fractions=acc["fractions"] / replications,
            replications=replications,
            jobs_per_replication=float(np.mean(acc["jobs"])),
        )
        samples[policy.name] = {
            m: tuple(acc[m]) for m in _CELL_METRICS
        }
    return CellEvaluation(
        config=config,
        evaluations=evaluations,
        samples=samples,
        replications=replications,
        confidence=confidence,
        stream_misses=stream_misses,
    )


def _accumulate(acc: dict, result: SimulationResults) -> None:
    acc["mean_response_time"].append(result.metrics.mean_response_time)
    acc["mean_response_ratio"].append(result.metrics.mean_response_ratio)
    acc["fairness"].append(result.metrics.fairness)
    acc["jobs"].append(result.metrics.jobs)
    acc["fractions"] += result.dispatch_fractions


def evaluate_cell(
    config: SimulationConfig,
    policies,
    *,
    replications: int = 10,
    base_seed: int = 0,
    confidence: float = 0.95,
) -> CellEvaluation:
    """Evaluate several policies on one configuration with shared streams.

    Per policy this is bit-identical to :func:`evaluate_policy` with the
    same arguments; across policies each replication's arrival and size
    arrays are materialized once and shared (common random numbers make
    them equal anyway), so the cell costs one stage-1 sampling pass per
    replication instead of one per (policy, replication).  Policies that
    need the event engine (dynamic feedback, exotic disciplines) drop
    out of the batch member-by-member and still evaluate correctly.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    policies = _resolve_policies(policies)
    seeds = replication_seeds(base_seed, replications)
    pool = StreamPool()
    fast = _cell_fast_indices(config, policies)
    per_policy = [
        {m: [] for m in _CELL_METRICS} | {"jobs": [], "fractions": np.zeros(config.n)}
        for _ in policies
    ]
    # One batched run_cell call for every (fast policy, replication)
    # member: replications share the round-robin sequence memo and the
    # per-call setup, and each replication still materializes its own
    # streams internally, so results are bit-identical to per-rep calls.
    members = [(pi, r) for r in range(replications) for pi in sorted(fast)]
    batched = (
        run_cell(config, policies, seeds, pool=pool, members=members)
        if members
        else {}
    )
    for r in range(replications):
        for pi in range(len(policies)):
            if pi in fast:
                _accumulate(per_policy[pi], batched[(pi, r)])
            else:
                _accumulate(
                    per_policy[pi],
                    run_policy_once(config, policies[pi], seed=seeds[r]),
                )
    return _summarize_cell(config, policies, per_policy, confidence, pool.misses)


def evaluate_cell_to_precision(
    config: SimulationConfig,
    policies,
    *,
    target_relative_half_width: float = 0.05,
    metric: str = "mean_response_ratio",
    paired_baseline: str | None = None,
    min_replications: int = 3,
    max_replications: int = 50,
    base_seed: int = 0,
    confidence: float = 0.95,
) -> CellEvaluation:
    """Add replications to a cell until its confidence intervals are tight.

    Two stopping modes:

    * **absolute** (default) — stop when every policy's ``metric``
      interval has relative half-width ≤ the target (each policy judged
      like :func:`evaluate_policy_to_precision`);
    * **paired** (``paired_baseline`` names one of the policies) — stop
      when every *other* policy's paired-difference interval against the
      baseline has half-width ≤ target × |baseline mean|.  Differences
      under CRN can sit near zero, so the target is scaled by the
      baseline's metric mean rather than by the difference itself.

    Replications extend deterministically (seed *r* is always the same),
    and each one is sampled once and shared across all policies, so the
    paired mode reaches a verdict in far fewer replications than
    independent intervals would need.
    """
    if not 0.0 < target_relative_half_width:
        raise ValueError(
            f"target half-width must be positive, got {target_relative_half_width}"
        )
    if not 1 <= min_replications <= max_replications:
        raise ValueError(
            f"need 1 <= min_replications <= max_replications, got "
            f"{min_replications}/{max_replications}"
        )
    if metric not in _CELL_METRICS:
        raise KeyError(
            f"unknown metric {metric!r}; expected one of {sorted(_CELL_METRICS)}"
        )
    policies = _resolve_policies(policies)
    names = [p.name for p in policies]
    if paired_baseline is not None and paired_baseline not in names:
        raise KeyError(
            f"paired baseline {paired_baseline!r} not among policies {names}"
        )
    seeds = replication_seeds(base_seed, max_replications)
    pool = StreamPool()
    fast = _cell_fast_indices(config, policies)
    per_policy = [
        {m: [] for m in _CELL_METRICS} | {"jobs": [], "fractions": np.zeros(config.n)}
        for _ in policies
    ]

    def _summary_converged(summary) -> bool:
        # Degenerate intervals (n=1 guards never trigger here, but zero
        # variance and NaN-poisoned metrics do) terminate the loop:
        # their width is a flag, and repeating degenerate replications
        # would spin to max_replications without ever converging.
        return summary.degenerate or (
            summary.relative_half_width <= target_relative_half_width
        )

    def converged() -> bool:
        if paired_baseline is None:
            return all(
                _summary_converged(summarize_replications(acc[metric], confidence))
                for acc in per_policy
            )
        bi = names.index(paired_baseline)
        base_values = per_policy[bi][metric]
        scale = abs(float(np.mean(base_values)))
        if scale == 0.0 or not np.isfinite(scale):
            # The paired target is scaled by the baseline mean; with a
            # zero or non-finite baseline the criterion is undefined
            # and can never be met — stop with what we have rather
            # than looping on NaN comparisons.
            return True
        for pi in range(len(policies)):
            if pi == bi:
                continue
            ps = summarize_paired(per_policy[pi][metric], base_values, confidence)
            if not (
                ps.degenerate
                or ps.half_width <= target_relative_half_width * scale
            ):
                return False
        return True

    done = 0
    for r in range(max_replications):
        for pi, result in _run_cell_replication(
            config, policies, seeds, r, pool, fast
        ).items():
            _accumulate(per_policy[pi], result)
        done += 1
        if done >= min_replications and converged():
            break
    return _summarize_cell(config, policies, per_policy, confidence, pool.misses)
