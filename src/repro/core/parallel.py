"""Parallel replication: fan independent runs across worker processes.

Replications are embarrassingly parallel (independent seeds, no shared
state), so the paper's 10-run protocol parallelizes perfectly.  This is
a thin convenience wrapper over the grid executor
(:mod:`repro.core.executor`): tasks run on the **shared** worker pool —
created lazily, reused across calls and across sweeps in one process —
instead of paying a fresh ``ProcessPoolExecutor`` spin-up per call.
The worker rebuilds the policy from its registry name inside each
process — policies carry non-picklable dispatcher factories, so custom
:class:`~repro.core.policies.SchedulingPolicy` instances must use the
serial :func:`~repro.core.evaluate.evaluate_policy` instead.

Results are **bit-identical** to the serial path: the same
per-replication seed sequence is used, only the execution order
changes, and the aggregation is order-insensitive.  The default
``base_seed`` follows the sweep harness convention
(:class:`repro.experiments.base.Scale` — 2000, the ICPP vintage), so
ad-hoc parallel evaluations and figure sweeps advertise the same
seeding scheme.
"""

from __future__ import annotations

from ..rng import replication_seeds
from ..sim.config import SimulationConfig
from .cache import ReplicationCache
from .evaluate import PolicyEvaluation
from .executor import ReplicationTask, run_replication_grid, summarize_outcomes
from .policies import get_policy

__all__ = ["evaluate_policy_parallel"]

#: Matches :class:`repro.experiments.base.Scale`'s base seed.
DEFAULT_BASE_SEED = 2000


def evaluate_policy_parallel(
    config: SimulationConfig,
    policy_name: str,
    *,
    estimation_error: float | None = None,
    replications: int = 10,
    base_seed: int = DEFAULT_BASE_SEED,
    confidence: float = 0.95,
    n_jobs: int = 2,
    cache: ReplicationCache | None = None,
) -> PolicyEvaluation:
    """Replicated evaluation with replications spread over *n_jobs*
    worker processes (the shared pool).

    ``policy_name`` (plus the optional Figure 6 ``estimation_error``)
    must resolve through :func:`repro.core.policies.get_policy` — the
    policy is reconstructed inside each worker.  Pass a
    :class:`~repro.core.cache.ReplicationCache` to reuse completed
    replications across invocations.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    # Validate the name up front (fail fast in the parent process).
    policy = get_policy(policy_name, estimation_error=estimation_error)

    tasks = [
        ReplicationTask(
            key=r,
            config=config,
            policy_name=policy_name,
            estimation_error=estimation_error,
            seed=seed,
        )
        for r, seed in enumerate(replication_seeds(base_seed, replications))
    ]
    report = run_replication_grid(tasks, n_jobs=n_jobs, cache=cache)
    outcomes = [report.outcomes[r] for r in range(replications)]
    return summarize_outcomes(policy.name, config, outcomes, confidence=confidence)
