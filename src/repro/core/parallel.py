"""Parallel replication: fan independent runs across worker processes.

Replications are embarrassingly parallel (independent seeds, no shared
state), so the paper's 10-run protocol parallelizes perfectly.  The
worker rebuilds the policy from its registry name inside each process —
policies carry non-picklable dispatcher factories, so custom
:class:`~repro.core.policies.SchedulingPolicy` instances must use the
serial :func:`~repro.core.evaluate.evaluate_policy` instead.

Results are **bit-identical** to the serial path: the same
per-replication seed sequence is used, only the execution order
changes, and the aggregation is order-insensitive.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..metrics import summarize_replications
from ..rng import replication_seeds
from ..sim.config import SimulationConfig
from .evaluate import PolicyEvaluation, run_policy_once
from .policies import get_policy

__all__ = ["evaluate_policy_parallel"]


def _worker(args) -> tuple[float, float, float, int, np.ndarray]:
    config, policy_name, estimation_error, seed = args
    policy = get_policy(policy_name, estimation_error=estimation_error)
    result = run_policy_once(config, policy, seed=seed)
    return (
        result.metrics.mean_response_time,
        result.metrics.mean_response_ratio,
        result.metrics.fairness,
        result.metrics.jobs,
        result.dispatch_fractions,
    )


def evaluate_policy_parallel(
    config: SimulationConfig,
    policy_name: str,
    *,
    estimation_error: float | None = None,
    replications: int = 10,
    base_seed: int = 0,
    confidence: float = 0.95,
    n_jobs: int = 2,
) -> PolicyEvaluation:
    """Replicated evaluation with replications spread over *n_jobs*
    worker processes.

    ``policy_name`` (plus the optional Figure 6 ``estimation_error``)
    must resolve through :func:`repro.core.policies.get_policy` — the
    policy is reconstructed inside each worker.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    # Validate the name up front (fail fast in the parent process).
    policy = get_policy(policy_name, estimation_error=estimation_error)

    seeds = replication_seeds(base_seed, replications)
    tasks = [(config, policy_name, estimation_error, seed) for seed in seeds]
    if n_jobs == 1:
        outcomes = [_worker(t) for t in tasks]
    else:
        with ProcessPoolExecutor(max_workers=min(n_jobs, replications)) as pool:
            outcomes = list(pool.map(_worker, tasks))

    times = [o[0] for o in outcomes]
    ratios = [o[1] for o in outcomes]
    fairs = [o[2] for o in outcomes]
    jobs = [o[3] for o in outcomes]
    fractions = np.sum([o[4] for o in outcomes], axis=0)
    return PolicyEvaluation(
        policy_name=policy.name,
        config=config,
        mean_response_time=summarize_replications(times, confidence),
        mean_response_ratio=summarize_replications(ratios, confidence),
        fairness=summarize_replications(fairs, confidence),
        dispatch_fractions=fractions / replications,
        replications=replications,
        jobs_per_replication=float(np.mean(jobs)),
    )
