"""Persistent replication cache: completed runs survive the process.

A replication is a pure function of (simulation configuration, policy,
seed, kernel version), so its outcome can be stored on disk and reused:
re-running a figure at the same scale skips every completed replication,
and an interrupted ``paper``-scale sweep resumes instead of restarting.

Entries are keyed by a SHA-256 over a canonical JSON rendering of the
inputs.  The kernel version tag (:data:`repro.sim.fastpath.KERNEL_VERSION`)
participates in the key, so bumping it after a numerical change
invalidates every cached replication at once.  Each entry is one small
JSON file written atomically (temp file + rename): concurrent grid
workers and interrupted runs can never corrupt the store, and floats
survive the round-trip bit-exactly (shortest-repr serialization).

The cache is opt-in: pass a :class:`ReplicationCache` explicitly, or set
the ``REPRO_CACHE`` environment variable to a directory path and
:func:`default_cache` picks it up.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
from pathlib import Path

import numpy as np

from ..obs import counters
from ..obs.spans import span
from ..sim.config import SimulationConfig
from ..sim.fastpath import KERNEL_VERSION

__all__ = ["ReplicationCache", "default_cache", "config_signature"]

logger = logging.getLogger("repro.cache")

#: One replication's outcome, as produced by the grid worker:
#: (mean_response_time, mean_response_ratio, fairness, jobs, fractions).
_FIELDS = ("mean_response_time", "mean_response_ratio", "fairness", "jobs")


def config_signature(config: SimulationConfig) -> dict:
    """Canonical, JSON-ready rendering of every field that shapes a run."""
    signature = {
        "speeds": list(config.speeds),
        "utilization": config.utilization,
        "duration": config.duration,
        "warmup": config.warmup,
        "size_distribution": repr(config.size_distribution),
        "arrival_cv": config.arrival_cv,
        "discipline": config.discipline,
        "quantum": config.quantum,
        "drain": config.drain,
        "feedback": repr(config.feedback),
        "rate_profile": repr(config.rate_profile),
    }
    # Added only when set, so every fault-free key (and with it every
    # entry cached before fault injection existed) stays valid.
    if config.faults is not None:
        signature["faults"] = repr(config.faults)
    return signature


def _seed_signature(seed) -> dict:
    if isinstance(seed, np.random.SeedSequence):
        return {"entropy": seed.entropy, "spawn_key": list(seed.spawn_key)}
    return {"entropy": int(seed), "spawn_key": []}


class ReplicationCache:
    """On-disk store of completed replication outcomes."""

    def __init__(self, directory: str | Path, *, kernel_version: str = KERNEL_VERSION):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.kernel_version = str(kernel_version)

    def task_key(
        self,
        config: SimulationConfig,
        policy_name: str,
        estimation_error: float | None,
        seed,
    ) -> str:
        """Stable content hash identifying one replication."""
        payload = {
            "kernel": self.kernel_version,
            "config": config_signature(config),
            "policy": str(policy_name).upper(),
            "estimation_error": estimation_error,
            "seed": _seed_signature(seed),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str):
        """The cached outcome tuple, or None (missing or unreadable).

        Unreadable means *any* defect — a torn write from a crashed
        process, truncation, a hand-edited file, wrong types: all decode
        failures degrade to a miss, and the subsequent :meth:`put`
        atomically replaces the bad entry with a fresh one.
        """
        with span("cache_lookup"):
            try:
                data = json.loads(self._path(key).read_text())
                outcome = (
                    float(data["mean_response_time"]),
                    float(data["mean_response_ratio"]),
                    float(data["fairness"]),
                    int(data["jobs"]),
                    np.asarray(data["dispatch_fractions"], dtype=float),
                    # Entries written before fault injection existed lack
                    # the field; fault-free loss is exactly 0.0.
                    float(data.get("loss_rate", 0.0)),
                )
            except (OSError, ValueError, KeyError, TypeError):
                counters.inc("cache.miss")
                return None  # treat corrupt/missing entries as misses
            counters.inc("cache.hit")
            return outcome

    #: Distinguishes temp files written by threads sharing one pid.
    _tmp_counter = itertools.count()

    def put(self, key: str, outcome) -> None:
        """Store one outcome atomically.

        The entry is staged to a name unique to this (process, call) —
        pid plus a monotone counter — then published with ``os.replace``.
        Concurrent writers of the same key therefore never interleave
        bytes: readers see either the old complete entry or the new one,
        and the last publisher wins (all writers compute the same value,
        so which one lands is immaterial).
        """
        time_, ratio, fairness, jobs, fractions = outcome[:5]
        data = {
            "mean_response_time": float(time_),
            "mean_response_ratio": float(ratio),
            "fairness": float(fairness),
            "jobs": int(jobs),
            "dispatch_fractions": [float(x) for x in np.asarray(fractions)],
            "loss_rate": float(outcome[5]) if len(outcome) > 5 else 0.0,
            "kernel": self.kernel_version,
        }
        path = self._path(key)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        )
        tmp.write_text(json.dumps(data))
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def default_cache() -> ReplicationCache | None:
    """Cache at ``$REPRO_CACHE`` if the variable is set, else None."""
    path = os.environ.get("REPRO_CACHE")
    return ReplicationCache(path) if path else None
