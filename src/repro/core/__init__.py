"""The paper's primary contribution assembled: named scheduling policies
(Table 2), the replicated evaluation protocol (Section 4.1), and the
performance stack that runs it — grid executor, shared worker pool, and
persistent replication cache."""

from .adaptive import AdaptiveOrrDispatcher
from .cache import ReplicationCache, default_cache
from .evaluate import (
    CellEvaluation,
    PolicyEvaluation,
    evaluate_cell,
    evaluate_cell_to_precision,
    evaluate_policy,
    evaluate_policy_to_precision,
    run_policy_once,
)
from .executor import (
    CellTask,
    GridReport,
    ReplicationTask,
    resolve_n_jobs,
    run_cell_grid,
    run_replication_grid,
    shared_executor,
    shutdown_shared_executor,
    summarize_outcomes,
)
from .parallel import evaluate_policy_parallel
from .policies import PAPER_POLICIES, SchedulingPolicy, get_policy, policy_names

__all__ = [
    "SchedulingPolicy",
    "get_policy",
    "policy_names",
    "PAPER_POLICIES",
    "PolicyEvaluation",
    "CellEvaluation",
    "evaluate_policy",
    "evaluate_policy_to_precision",
    "evaluate_cell",
    "evaluate_cell_to_precision",
    "evaluate_policy_parallel",
    "run_policy_once",
    "AdaptiveOrrDispatcher",
    "ReplicationCache",
    "default_cache",
    "ReplicationTask",
    "CellTask",
    "GridReport",
    "resolve_n_jobs",
    "run_replication_grid",
    "run_cell_grid",
    "shared_executor",
    "shutdown_shared_executor",
    "summarize_outcomes",
]
