"""The paper's primary contribution assembled: named scheduling policies
(Table 2) and the replicated evaluation protocol (Section 4.1)."""

from .adaptive import AdaptiveOrrDispatcher
from .evaluate import (
    PolicyEvaluation,
    evaluate_policy,
    evaluate_policy_to_precision,
    run_policy_once,
)
from .parallel import evaluate_policy_parallel
from .policies import PAPER_POLICIES, SchedulingPolicy, get_policy, policy_names

__all__ = [
    "SchedulingPolicy",
    "get_policy",
    "policy_names",
    "PAPER_POLICIES",
    "PolicyEvaluation",
    "evaluate_policy",
    "evaluate_policy_to_precision",
    "evaluate_policy_parallel",
    "run_policy_once",
    "AdaptiveOrrDispatcher",
]
