"""Workload-allocation interfaces.

An *allocator* maps the system model (speeds + utilization) to the
fraction vector α = (α₁..αₙ) that the dispatcher then realizes job by
job.  All allocators are pure functions of the model — static scheduling
never looks at instantaneous state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..queueing.network import HeterogeneousNetwork, validate_allocation

__all__ = ["Allocator", "AllocationResult"]


@dataclass(frozen=True)
class AllocationResult:
    """An allocation α with provenance and convenience accessors."""

    alphas: np.ndarray
    network: HeterogeneousNetwork
    allocator_name: str

    def __post_init__(self):
        object.__setattr__(self, "alphas", validate_allocation(self.alphas))

    @property
    def n(self) -> int:
        return int(self.alphas.size)

    @property
    def zero_share_indices(self) -> list[int]:
        """Computers allocated exactly no workload (Theorem 2 cutoff)."""
        return np.nonzero(self.alphas == 0.0)[0].tolist()

    @property
    def active_count(self) -> int:
        return int(np.count_nonzero(self.alphas))

    def per_server_utilization(self) -> np.ndarray:
        return self.network.per_server_utilization(self.alphas)

    def predicted_mean_response_time(self) -> float:
        """Analytical T̄ under this allocation (paper equation (3))."""
        return self.network.mean_response_time(self.alphas)

    def predicted_mean_response_ratio(self) -> float:
        """Analytical R̄ = μT̄ under this allocation."""
        return self.network.mean_response_ratio(self.alphas)

    def skewness_vs_weighted(self) -> np.ndarray:
        """αᵢ / (sᵢ/Σs): >1 means over-proportional share (fast machines
        under the optimized scheme), <1 under-proportional."""
        weighted = self.network.speeds / self.network.total_speed
        return self.alphas / weighted


class Allocator(abc.ABC):
    """Strategy object computing workload fractions for a network."""

    #: Short name used in experiment tables ("weighted", "optimized", ...).
    name: str = "base"

    @abc.abstractmethod
    def compute(self, network: HeterogeneousNetwork) -> AllocationResult:
        """Return the allocation for *network*.

        Implementations must return fractions that sum to one, are
        non-negative, and keep every individual computer unsaturated
        (αᵢλ < sᵢμ) whenever the system itself is unsaturated.
        """

    def __call__(self, network: HeterogeneousNetwork) -> AllocationResult:
        return self.compute(network)

    def fractions(self, network: HeterogeneousNetwork) -> np.ndarray:
        """Shorthand returning just the α vector."""
        return self.compute(network).alphas
