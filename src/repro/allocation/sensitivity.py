"""Analytic sensitivity of the optimized scheme (theory behind §5).

Closed-form answers to the questions Figures 3 and 5 ask by simulation:

* :func:`predicted_improvement` — the M/M/1-PS model's improvement of
  optimized over weighted allocation, 1 − T̄*opt/T̄*weighted.  Figure 3's
  skew trend and Figure 5's load trend are both visible analytically:
  the improvement grows with speed dispersion and *decreases* with load
  — but not to zero.  Although the fraction vector degenerates to the
  weighted one as ρ → 1 (the paper's §2.3 remark), the response-time
  gap converges to the dispersion 1 − (Σ√sᵢ)²/(n·Σsᵢ): near saturation
  T̄ is governed by the per-server *slack*, and the optimized scheme
  distributes slack ∝ √(sᵢμ) versus weighted's ∝ sᵢμ even in the limit.
  (For the Table 3 base system the limit is ≈ 0.20 — the paper's
  measured 24% gap at ρ = 0.9 sits right on the analytic curve.)
* :func:`response_time_load_derivative` — dT̄*/dρ under the optimized
  scheme (via the chain rule on λ), quantifying how steeply performance
  degrades with load and hence how much a ρ misestimate costs to first
  order (the analytic shadow of Figure 6).
* :func:`improvement_curve` — the (ρ, improvement) series for a speed
  vector, i.e. the analytic version of a Figure 5 policy-gap line.

These use the model, not the simulator: under hyperexponential arrivals
the absolute values shift, but the paper's experiments confirm the
shapes carry over.
"""

from __future__ import annotations

import numpy as np

from ..queueing.network import HeterogeneousNetwork
from .optimized import optimized_fractions
from .planning import optimal_mean_response_time

__all__ = [
    "predicted_improvement",
    "improvement_curve",
    "response_time_load_derivative",
    "speed_dispersion",
]


def speed_dispersion(speeds) -> float:
    """The model's skew measure: 1 − (Σ√sᵢ)²/(n·Σsᵢ) ∈ [0, 1).

    Zero for homogeneous systems; approaches 1 as one machine dominates.
    Appears naturally in the optimized objective: F*min/F*weighted is a
    function of this quantity and ρ alone.
    """
    s = np.asarray(speeds, dtype=float)
    if s.ndim != 1 or s.size == 0 or np.any(s <= 0):
        raise ValueError("speeds must be a non-empty positive vector")
    return float(1.0 - (np.sqrt(s).sum() ** 2) / (s.size * s.sum()))


def predicted_improvement(network: HeterogeneousNetwork) -> float:
    """Analytic 1 − T̄(optimized)/T̄(weighted) ∈ [0, 1).

    Zero exactly for homogeneous systems; the paper's headline gaps
    (−42% at 20:1 skew, Figure 3) are this quantity dressed in
    simulation noise.  Decreasing in ρ with limit
    :func:`speed_dispersion` as ρ → 1 (see the module docstring).
    """
    weighted = network.speeds / network.total_speed
    t_weighted = network.mean_response_time(weighted)
    t_opt = optimal_mean_response_time(network)
    return float(1.0 - t_opt / t_weighted)


def improvement_curve(speeds, utilizations) -> np.ndarray:
    """predicted_improvement across a load sweep (Figure 5, analytically)."""
    out = []
    for rho in utilizations:
        if not 0.0 < rho < 1.0:
            raise ValueError(f"utilization must lie in (0, 1), got {rho}")
        out.append(
            predicted_improvement(
                HeterogeneousNetwork(np.asarray(speeds, dtype=float),
                                     utilization=rho)
            )
        )
    return np.asarray(out)


def response_time_load_derivative(
    network: HeterogeneousNetwork, *, eps: float = 1e-6
) -> float:
    """dT̄*/dρ for the optimized scheme (central difference on the exact
    re-solve — the Theorem 2 active set can change with ρ, so a single
    closed-form branch is not globally valid)."""
    rho = network.utilization
    if not eps < rho < 1.0 - eps:
        raise ValueError(f"utilization {rho} too close to the boundary for eps={eps}")
    up = optimal_mean_response_time(network.with_utilization(rho + eps))
    dn = optimal_mean_response_time(network.with_utilization(rho - eps))
    return float((up - dn) / (2.0 * eps))
