"""Capacity planning on top of Algorithm 1's closed form.

Because Theorem 1 gives the *optimal* objective in closed form,

.. math::  F^*(s) = \\frac{\\bigl(\\sum_{j \\in A}\\sqrt{s_j\\mu}\\bigr)^2}
                         {\\sum_{j \\in A} s_j\\mu - \\lambda}
           \\qquad (A = \\text{active set}),

the *marginal value of speed* ∂T̄*/∂sᵢ is available analytically via the
envelope theorem (the allocation re-optimizes, but to first order only
the direct sᵢ dependence matters).  That answers procurement questions
exactly where the paper's model applies:

* which machine should be upgraded first (most negative marginal)?
* what is a new machine of speed s worth (finite difference of T̄*)?
* is an extra unit of speed worth more on the fast or the slow box?

Zero-share machines (Theorem 2's cutoff) have **zero** marginal value
up to the speed where they re-enter the active set — captured exactly
because the derivative of F* with respect to an inactive sᵢ vanishes.
"""

from __future__ import annotations

import numpy as np

from ..queueing.network import HeterogeneousNetwork
from .optimized import optimized_fractions

__all__ = [
    "optimal_mean_response_time",
    "marginal_response_time",
    "value_of_added_machine",
    "best_single_upgrade",
]


def optimal_mean_response_time(network: HeterogeneousNetwork) -> float:
    """T̄ under the optimized allocation (exact, via Algorithm 1)."""
    alphas = optimized_fractions(network)
    return network.mean_response_time(alphas)


def marginal_response_time(network: HeterogeneousNetwork) -> np.ndarray:
    """∂T̄*/∂sᵢ for each computer (non-positive; 0 for zero-share machines).

    Derived from T̄* = (F* − n)/λ with F* evaluated on the active set A:
    with G = Σ_{j∈A} √(sⱼμ) and D = Σ_{j∈A} sⱼμ − λ,

    .. math::  \\frac{\\partial F^*}{\\partial s_i}
               = \\frac{\\mu G}{D}\\Bigl(\\frac{1}{\\sqrt{s_i\\mu}} G
                  \\cdot \\frac{\\sqrt{s_i \\mu}}{G} ... \\Bigr)
               = \\mu\\,\\frac{G}{D}\\Bigl(\\frac{G}{\\;\\sqrt{s_i\\mu}\\,}^{-1}\\Bigr)

    concretely ∂F*/∂sᵢ = μ·(G/√(sᵢμ))/D − μ·(G/D)² for i ∈ A, else 0.
    Validated against central finite differences in the tests.
    """
    alphas = optimized_fractions(network)
    active = alphas > 0
    rates = network.service_rates()
    sqrt_rates = np.sqrt(rates)
    g = float(sqrt_rates[active].sum())
    d = float(rates[active].sum() - network.arrival_rate)
    out = np.zeros(network.n)
    # dF*/ds_i = mu * [ G / sqrt(s_i mu) ] / D  -  mu * (G/D)^2
    out[active] = network.mu * (g / sqrt_rates[active]) / d - network.mu * (g / d) ** 2
    # dT/ds = dF/ds / lambda.
    return out / network.arrival_rate


def value_of_added_machine(
    network: HeterogeneousNetwork, new_speed: float
) -> float:
    """Reduction in T̄* from adding one machine of the given speed.

    Returns a non-negative improvement (seconds of mean response time);
    zero when the machine is slow enough that Algorithm 1 would not use
    it at this load.
    """
    if new_speed <= 0:
        raise ValueError(f"new speed must be positive, got {new_speed}")
    before = optimal_mean_response_time(network)
    grown = HeterogeneousNetwork(
        np.concatenate([network.speeds, [new_speed]]),
        mu=network.mu,
        arrival_rate=network.arrival_rate,
    )
    after = optimal_mean_response_time(grown)
    return max(before - after, 0.0)


def best_single_upgrade(
    network: HeterogeneousNetwork, speed_increment: float
) -> tuple[int, float]:
    """Which single computer benefits T̄* most from +`speed_increment`?

    Returns (computer index, response-time reduction).  Uses exact
    re-solves rather than the marginal (the increment can move the
    Theorem 2 cutoff).
    """
    if speed_increment <= 0:
        raise ValueError(
            f"speed increment must be positive, got {speed_increment}"
        )
    before = optimal_mean_response_time(network)
    best_idx, best_gain = -1, -np.inf
    for i in range(network.n):
        speeds = network.speeds.copy()
        speeds[i] += speed_increment
        upgraded = HeterogeneousNetwork(
            speeds, mu=network.mu, arrival_rate=network.arrival_rate
        )
        gain = before - optimal_mean_response_time(upgraded)
        if gain > best_gain:
            best_idx, best_gain = i, gain
    return best_idx, float(best_gain)
