"""Numerical cross-check of Algorithm 1 via scipy's SLSQP.

F(α) is strictly convex on the feasible simplex slice, so a local
minimizer is the global one; running SLSQP with the analytic gradient
from :mod:`repro.queueing.objective` must land on the same allocation as
the closed form (to solver tolerance).  This validates both the
Lagrangian algebra of Theorem 1 and the zero-share cutoff of Theorem 2
without trusting either derivation, and the ablation benchmark
quantifies how much faster the closed form is.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..queueing.network import HeterogeneousNetwork
from ..queueing.objective import objective_gradient, objective_value
from .base import AllocationResult, Allocator

__all__ = ["NumericAllocator", "numeric_fractions"]


def numeric_fractions(
    network: HeterogeneousNetwork,
    *,
    tol: float = 1e-12,
    max_iterations: int = 500,
) -> np.ndarray:
    """Solve the allocation program with SLSQP and return α.

    Starts from the simple weighted allocation (always feasible for a
    stable system) and enforces per-computer non-saturation through box
    bounds αᵢ ≤ (1 − margin)·sᵢμ/λ.
    """
    if network.arrival_rate <= 0:
        raise ValueError("numeric allocation needs a positive arrival rate")
    if not network.stable:
        raise ValueError(
            f"system saturated (utilization={network.utilization:.4f} >= 1)"
        )
    lam = network.arrival_rate
    rates = network.service_rates()
    x0 = network.speeds / network.total_speed

    # Keep iterates strictly inside the stability region so the objective
    # stays finite during line searches.
    margin = 1e-9
    upper = np.minimum((1.0 - margin) * rates / lam, 1.0)

    def fun(a: np.ndarray) -> float:
        denom = rates - a * lam
        return float(np.sum(rates / denom))

    def grad(a: np.ndarray) -> np.ndarray:
        denom = rates - a * lam
        return rates * lam / denom**2

    result = optimize.minimize(
        fun,
        x0,
        jac=grad,
        method="SLSQP",
        bounds=[(0.0, float(u)) for u in upper],
        constraints=[{"type": "eq", "fun": lambda a: a.sum() - 1.0,
                      "jac": lambda a: np.ones_like(a)}],
        options={"maxiter": max_iterations, "ftol": tol},
    )
    if not result.success:
        raise RuntimeError(f"SLSQP failed to converge: {result.message}")
    alphas = np.clip(result.x, 0.0, None)
    total = alphas.sum()
    if not np.isfinite(total) or total <= 0:
        raise RuntimeError("SLSQP returned a degenerate allocation")
    alphas /= total
    # Squash solver dust: components below tolerance are true zeros in the
    # closed form (Theorem 2) and keeping them poisons dispatch cycling.
    alphas[alphas < 1e-9] = 0.0
    alphas /= alphas.sum()
    return alphas


class NumericAllocator(Allocator):
    """Allocator computing α by numerical optimization (SLSQP)."""

    name = "numeric"

    def __init__(self, tol: float = 1e-12, max_iterations: int = 500):
        self.tol = tol
        self.max_iterations = max_iterations

    def compute(self, network: HeterogeneousNetwork) -> AllocationResult:
        alphas = numeric_fractions(
            network, tol=self.tol, max_iterations=self.max_iterations
        )
        return AllocationResult(alphas=alphas, network=network, allocator_name=self.name)


def compare_with_closed_form(network: HeterogeneousNetwork) -> dict[str, float]:
    """Return the objective gap between SLSQP and Algorithm 1 (diagnostics)."""
    from .optimized import optimized_fractions

    closed = optimized_fractions(network)
    numeric = numeric_fractions(network)
    return {
        "objective_closed_form": objective_value(network, closed),
        "objective_numeric": objective_value(network, numeric),
        "max_abs_alpha_gap": float(np.max(np.abs(closed - numeric))),
        "max_abs_gradient_spread": float(
            np.ptp(objective_gradient(network, closed)[closed > 0])
        ),
    }
