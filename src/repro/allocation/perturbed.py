"""Allocation under misestimated system load (Figure 6's sensitivity study).

The optimized scheme needs the system utilization ρ as input.  In
practice ρ is estimated, so the paper studies ORR(±e%): the allocation
is computed with ρ̂ = (1 ± e)·ρ while the system actually runs at ρ.

* Underestimation (ρ̂ < ρ) makes the allocation *more* skewed than
  optimal and can saturate the fast computers at high true load — the
  failure mode Figure 6(a) shows.
* Overestimation pushes the allocation toward the simple weighted scheme
  (its ρ → 1 limit) and is nearly harmless — Figure 6(b).

:func:`clamp_estimated_utilization` mirrors the paper's footnote 7: at
ρ̂ ≥ 1 the optimized scheme converges to weighted, so estimates are
clamped just below 1 rather than rejected.
"""

from __future__ import annotations

from ..queueing.network import HeterogeneousNetwork
from .base import AllocationResult, Allocator
from .optimized import OptimizedAllocator

__all__ = ["MisestimatedOptimizedAllocator", "clamp_estimated_utilization"]

#: ρ̂ values at or above 1 collapse to this, i.e. effectively weighted.
_MAX_ESTIMATE = 1.0 - 1e-9


def clamp_estimated_utilization(rho_hat: float) -> float:
    """Clamp an estimated utilization into the solvable range (0, 1).

    Raises for non-positive estimates (they carry no information), clamps
    ρ̂ ≥ 1 to just below 1 where the optimized scheme equals weighted
    allocation (paper footnote 7).
    """
    if rho_hat <= 0.0:
        raise ValueError(f"estimated utilization must be positive, got {rho_hat}")
    return min(rho_hat, _MAX_ESTIMATE)


class MisestimatedOptimizedAllocator(Allocator):
    """Optimized allocation computed from (1 + relative_error)·ρ.

    ``relative_error`` is the paper's bracket notation: ORR(+5%) is
    ``relative_error=0.05``, ORR(−10%) is ``relative_error=-0.10``.
    """

    def __init__(self, relative_error: float):
        if relative_error <= -1.0:
            raise ValueError(
                f"relative error must exceed -100%, got {relative_error:+.0%}"
            )
        self.relative_error = float(relative_error)
        self.name = f"optimized({relative_error:+.0%})"

    def compute(self, network: HeterogeneousNetwork) -> AllocationResult:
        rho_hat = clamp_estimated_utilization(
            network.utilization * (1.0 + self.relative_error)
        )
        inner = OptimizedAllocator(utilization_override=rho_hat)
        result = inner.compute(network)
        return AllocationResult(
            alphas=result.alphas, network=network, allocator_name=self.name
        )

    def is_feasible(self, network: HeterogeneousNetwork) -> bool:
        """True when the perturbed allocation keeps every computer stable
        at the *true* load.  Underestimation at high ρ can violate this —
        the instability the paper warns about in Section 5.4."""
        alphas = self.compute(network).alphas
        return bool(
            (alphas * network.arrival_rate < network.service_rates()).all()
        )
