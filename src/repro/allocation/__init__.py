"""Workload allocation schemes (the paper's Section 2).

* :class:`WeightedAllocator` — αᵢ ∝ sᵢ (Section 2.1 baseline).
* :class:`OptimizedAllocator` — Algorithm 1 closed form (Theorems 1–3).
* :class:`NumericAllocator` — SLSQP cross-check of the closed form.
* :class:`MisestimatedOptimizedAllocator` — ORR(±e%) for Figure 6.
* :class:`EqualAllocator` / :class:`ExplicitAllocator` — auxiliary
  baselines and fixed fraction vectors (Figure 2).
"""

from .base import AllocationResult, Allocator
from .numeric import NumericAllocator, compare_with_closed_form, numeric_fractions
from .optimized import (
    OptimizedAllocator,
    optimized_fractions,
    unconstrained_fractions,
    zero_share_cutoff,
)
from .perturbed import MisestimatedOptimizedAllocator, clamp_estimated_utilization
from .planning import (
    best_single_upgrade,
    marginal_response_time,
    optimal_mean_response_time,
    value_of_added_machine,
)
from .sensitivity import (
    improvement_curve,
    predicted_improvement,
    response_time_load_derivative,
    speed_dispersion,
)
from .weighted import EqualAllocator, ExplicitAllocator, WeightedAllocator

__all__ = [
    "Allocator",
    "AllocationResult",
    "WeightedAllocator",
    "EqualAllocator",
    "ExplicitAllocator",
    "OptimizedAllocator",
    "optimized_fractions",
    "unconstrained_fractions",
    "zero_share_cutoff",
    "NumericAllocator",
    "numeric_fractions",
    "compare_with_closed_form",
    "MisestimatedOptimizedAllocator",
    "clamp_estimated_utilization",
    "optimal_mean_response_time",
    "marginal_response_time",
    "value_of_added_machine",
    "best_single_upgrade",
    "predicted_improvement",
    "improvement_curve",
    "response_time_load_derivative",
    "speed_dispersion",
]
