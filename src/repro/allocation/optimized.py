"""Optimized workload allocation — the paper's Algorithm 1 (Section 2.3).

Minimizes F(α) = Σ sᵢμ/(sᵢμ − αᵢλ) subject to Σαᵢ = 1 and
0 ≤ αᵢ < sᵢμ/λ.  Theorem 1 gives the interior KKT point

.. math::  \\alpha_i = \\frac{1}{\\lambda}\\Bigl(s_i\\mu -
           \\sqrt{s_i\\mu}\\,\\frac{\\sum_j s_j\\mu - \\lambda}
                                  {\\sum_j \\sqrt{s_j\\mu}}\\Bigr),

which can go negative for very slow computers; Theorem 2 shows the
optimum then pins those αᵢ to zero, and because the offending indices
are a contiguous prefix of the speed-sorted order, a binary search
(Algorithm 1 steps 4–5) locates the cutoff m.  Computers c₁..c_m get no
work at all; the remaining fast computers share the load by the
Theorem 1 formula restricted to the active suffix.

The result depends only on the relative speeds and the system
utilization ρ = λ/(μΣsᵢ) — μ and λ never need to be known separately.
"""

from __future__ import annotations

import numpy as np

from ..queueing.network import HeterogeneousNetwork
from .base import AllocationResult, Allocator

__all__ = [
    "OptimizedAllocator",
    "optimized_fractions",
    "unconstrained_fractions",
    "zero_share_cutoff",
    "CUTOFF_RTOL",
]

#: Relative tolerance of the Theorem 3 drop predicate.  The suffix sums
#: behind the predicate carry O(n·ulp) accumulation noise; at very light
#: loads (λ smaller than that noise) the *strict* inequality of the
#: paper's listing mis-drops machines of a perfectly homogeneous network
#: — the gap it tests is pure rounding error.  A machine is therefore
#: only dropped when the inequality holds by more than this fraction of
#: the suffix capacity, which is deterministic, scale-free, and far
#: below any physically meaningful speed difference.
CUTOFF_RTOL = 1e-12


def unconstrained_fractions(network: HeterogeneousNetwork) -> np.ndarray:
    """Theorem 1's interior solution, *without* the αᵢ ≥ 0 constraint.

    Entries may be negative (that is precisely the signal Theorem 2
    handles); useful for tests and for visualizing how slow a computer
    must be to be dropped.
    """
    _require_usable(network)
    rates = network.service_rates()
    sqrt_rates = np.sqrt(rates)
    c = (rates.sum() - network.arrival_rate) / sqrt_rates.sum()
    return (rates - sqrt_rates * c) / network.arrival_rate


def _require_usable(network: HeterogeneousNetwork) -> None:
    if network.arrival_rate <= 0:
        raise ValueError(
            "optimized allocation needs a positive arrival rate (utilization > 0)"
        )
    if not network.stable:
        raise ValueError(
            f"system saturated (utilization={network.utilization:.4f} >= 1): "
            "no allocation can stabilize it"
        )


def zero_share_cutoff(sorted_rates: np.ndarray, arrival_rate: float) -> int:
    """Binary search of Algorithm 1 steps 3–5 on speed-sorted service rates.

    Returns m, the number of slowest computers that receive zero share:
    the largest index (1-based) for which

    .. math::  \\sqrt{s_m\\mu} < \\frac{\\sum_{j=m}^n s_j\\mu - \\lambda}
                                       {\\sum_{j=m}^n \\sqrt{s_j\\mu}},

    or 0 when no computer is dropped.  The predicate is monotone along
    the sorted order (proved in the paper's technical report), which is
    what makes the binary search valid; the suffix sums are precomputed
    so each probe is O(1).

    The strict inequality is relaxed by :data:`CUTOFF_RTOL`: a machine
    is dropped only when the condition holds beyond the floating-point
    noise floor of the suffix sums.  Without the tolerance, homogeneous
    networks at very light load (λ below the cumsum rounding error)
    mis-drop machines whose predicate "gap" is pure rounding — the
    boundary-condition failure mode flagged in Mondal's note on optimal
    static load balancing.
    """
    n = sorted_rates.size
    sqrt_rates = np.sqrt(sorted_rates)
    # suffix_rate[i] = sum of sorted_rates[i:], suffix_sqrt likewise.
    suffix_rate = np.concatenate([np.cumsum(sorted_rates[::-1])[::-1], [0.0]])
    suffix_sqrt = np.concatenate([np.cumsum(sqrt_rates[::-1])[::-1], [0.0]])

    def dropped(i: int) -> bool:  # 0-based index of the probe computer
        gap = (suffix_rate[i] - arrival_rate) - sqrt_rates[i] * suffix_sqrt[i]
        return gap > CUTOFF_RTOL * max(suffix_rate[i], arrival_rate)

    lower, upper = 0, n - 1
    while lower <= upper:
        mid = (lower + upper) // 2
        if dropped(mid):
            lower = mid + 1
        else:
            upper = mid - 1
    return lower  # == paper's m (count of zero-share computers)


def optimized_fractions(network: HeterogeneousNetwork) -> np.ndarray:
    """Run Algorithm 1 and return α in the network's original speed order."""
    _require_usable(network)
    order = np.argsort(network.speeds, kind="stable")
    rates = network.service_rates()[order]
    lam = network.arrival_rate

    m = zero_share_cutoff(rates, lam)
    if m >= network.n:  # cannot happen for a stable system; guard anyway
        raise AssertionError("Algorithm 1 dropped every computer")

    active = rates[m:]
    sqrt_active = np.sqrt(active)
    c = (active.sum() - lam) / sqrt_active.sum()
    sorted_alphas = np.zeros(network.n)
    sorted_alphas[m:] = (active - sqrt_active * c) / lam

    alphas = np.empty(network.n)
    alphas[order] = sorted_alphas
    # The closed form sums to 1 exactly up to rounding; renormalize the
    # ~1e-16 drift so downstream validation is airtight.
    alphas = np.clip(alphas, 0.0, None)
    total = alphas.sum()
    if not np.isfinite(total) or total <= 0.0:
        # Catastrophic cancellation: the active numerators sum to λ
        # exactly in real arithmetic, but at λ below the rounding noise
        # of sᵢμ-sized terms every one of them can evaluate ≤ 0.  The
        # KKT point is then numerically indistinguishable from the
        # capacity-proportional split of the active set, so return that
        # instead of a NaN vector.
        sorted_alphas[m:] = active / active.sum()
        alphas[order] = sorted_alphas
        return alphas
    return alphas / total


class OptimizedAllocator(Allocator):
    """Allocator wrapper around Algorithm 1.

    Parameters
    ----------
    utilization_override:
        If given, compute the allocation *as if* the system utilization
        were this value (used by the Figure 6 sensitivity study where
        ρ is misestimated).  The analytical predictions in the returned
        :class:`AllocationResult` still use the *true* network.
    """

    name = "optimized"

    def __init__(self, utilization_override: float | None = None):
        if utilization_override is not None and not 0.0 < utilization_override < 1.0:
            raise ValueError(
                f"utilization_override must lie in (0, 1), got {utilization_override}"
            )
        self.utilization_override = utilization_override

    def compute(self, network: HeterogeneousNetwork) -> AllocationResult:
        model = network
        if self.utilization_override is not None:
            model = network.with_utilization(self.utilization_override)
        alphas = optimized_fractions(model)
        return AllocationResult(alphas=alphas, network=network, allocator_name=self.name)
