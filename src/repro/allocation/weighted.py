"""Simple weighted allocation (Section 2.1) and trivial baselines."""

from __future__ import annotations

import numpy as np

from ..queueing.network import HeterogeneousNetwork
from .base import AllocationResult, Allocator

__all__ = ["WeightedAllocator", "EqualAllocator", "ExplicitAllocator"]


class WeightedAllocator(Allocator):
    """αᵢ = sᵢ / Σⱼsⱼ — equalize utilization across computers.

    The paper's naive baseline: speed-aware but utilization-balanced, the
    scheme used by classic DNS/HTTP weighted load balancing.  The
    optimized scheme of Section 2.3 strictly improves on it whenever the
    system is heterogeneous and not fully loaded.
    """

    name = "weighted"

    def compute(self, network: HeterogeneousNetwork) -> AllocationResult:
        alphas = network.speeds / network.total_speed
        return AllocationResult(alphas=alphas, network=network, allocator_name=self.name)


class EqualAllocator(Allocator):
    """αᵢ = 1/n — speed-blind splitting (the no-information baseline).

    Not in the paper's evaluation matrix but useful as a sanity floor:
    any speed-aware scheme should beat it on a heterogeneous system.
    May saturate slow computers at high load; ``compute`` raises in that
    case rather than emit an infeasible allocation.
    """

    name = "equal"

    def compute(self, network: HeterogeneousNetwork) -> AllocationResult:
        n = network.n
        alphas = np.full(n, 1.0 / n)
        lam = network.arrival_rate
        if np.any(alphas * lam >= network.service_rates()):
            raise ValueError(
                "equal allocation saturates the slowest computer at this load; "
                "use a speed-aware allocator"
            )
        return AllocationResult(alphas=alphas, network=network, allocator_name=self.name)


class ExplicitAllocator(Allocator):
    """Wrap a user-supplied fraction vector (e.g. Figure 2's fixed α)."""

    name = "explicit"

    def __init__(self, alphas):
        self._alphas = np.asarray(alphas, dtype=float)

    def compute(self, network: HeterogeneousNetwork) -> AllocationResult:
        if self._alphas.size != network.n:
            raise ValueError(
                f"explicit allocation has {self._alphas.size} entries "
                f"for {network.n} computers"
            )
        return AllocationResult(
            alphas=self._alphas, network=network, allocator_name=self.name
        )
